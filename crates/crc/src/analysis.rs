//! Error-detection capability analysis for CRC parameter sets.
//!
//! The stochastic communication scheme discards upset packets based purely
//! on the CRC check, so the residual (undetected-error) rate of the chosen
//! CRC bounds how much corrupted data can leak into an IP core. This module
//! quantifies that: exhaustive burst-error coverage and Monte-Carlo
//! undetected-error fractions under the paper's two error models.

use crate::{CrcAlgorithm, CrcParams, TableCrc};

/// Result of an exhaustive burst-detection scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BurstReport {
    /// CRC parameter set analysed.
    pub params: CrcParams,
    /// Message length used, in bytes (tag excluded).
    pub message_bytes: usize,
    /// For each burst length `L` (1-indexed: entry 0 is L=1), the number of
    /// undetected bursts of exactly that length.
    pub undetected_by_length: Vec<u64>,
    /// Total bursts tried per length.
    pub tried_by_length: Vec<u64>,
}

impl BurstReport {
    /// Longest burst length (in bits) for which *every* burst was detected.
    pub fn guaranteed_burst_coverage(&self) -> usize {
        self.undetected_by_length
            .iter()
            .take_while(|&&n| n == 0)
            .count()
    }
}

/// Exhaustively applies every contiguous burst error of length
/// `1..=max_burst` bits at every offset of a framed message and reports how
/// many go undetected.
///
/// A burst of length `L` is a pattern whose first and last bits are 1; a
/// CRC of width `w` detects all bursts with `L <= w`, which this function
/// demonstrates empirically.
///
/// # Panics
///
/// Panics if `max_burst` is 0.
pub fn burst_detection_exhaustive(
    params: CrcParams,
    message: &[u8],
    max_burst: usize,
) -> BurstReport {
    assert!(max_burst > 0, "max_burst must be at least 1");
    let crc = TableCrc::new(params);
    let tag = crc.checksum(message);
    let n_tag = params.tag_bytes();
    let mut framed = message.to_vec();
    framed.extend_from_slice(&tag.to_be_bytes()[8 - n_tag..]);
    let nbits = framed.len() * 8;

    let decode_ok = |frame: &[u8]| -> bool {
        let (payload, tag_bytes) = frame.split_at(frame.len() - n_tag);
        let mut t = 0u64;
        for &b in tag_bytes {
            t = t << 8 | b as u64;
        }
        crc.checksum(payload) == t
    };

    // A "burst position" is counted in the CRC's own bit-processing order:
    // MSB-first within each byte for normal parameter sets, LSB-first for
    // reflected ones. This keeps a contiguous run of positions contiguous in
    // the codeword polynomial, which is what the burst guarantee is about.
    let flip = |frame: &mut [u8], bit: usize| {
        if params.reflect_in {
            frame[bit / 8] ^= 1 << (bit % 8);
        } else {
            frame[bit / 8] ^= 0x80 >> (bit % 8);
        }
    };

    let mut undetected = vec![0u64; max_burst];
    let mut tried = vec![0u64; max_burst];
    for len in 1..=max_burst {
        // Burst patterns of exactly `len` bits: first and last bit fixed at
        // 1, interior free: 2^(len-2) patterns (1 pattern for len 1 and 2).
        let interior_bits = len.saturating_sub(2);
        let patterns = 1u64 << interior_bits.min(10); // cap work per burst length
        for start in 0..=(nbits - len) {
            for pat_interior in 0..patterns {
                let mut frame = framed.clone();
                // Construct the burst: bit `start` and `start+len-1` are 1.
                flip(&mut frame, start);
                if len > 1 {
                    flip(&mut frame, start + len - 1);
                }
                for i in 0..interior_bits.min(10) {
                    if pat_interior >> i & 1 == 1 {
                        flip(&mut frame, start + 1 + i);
                    }
                }
                tried[len - 1] += 1;
                if decode_ok(&frame) {
                    undetected[len - 1] += 1;
                }
            }
        }
    }
    BurstReport {
        params,
        message_bytes: message.len(),
        undetected_by_length: undetected,
        tried_by_length: tried,
    }
}

/// Estimates the fraction of error vectors that escape CRC detection.
///
/// `errors` is an iterator of error vectors (same length as the framed
/// message) — typically produced by the fault crate's error-vector models.
/// Returns `undetected / total` over the supplied vectors; an empty iterator
/// yields 0.0. The theoretical value for a random error vector is
/// `2^-width`.
pub fn undetected_fraction<I>(params: CrcParams, message: &[u8], errors: I) -> f64
where
    I: IntoIterator<Item = Vec<u8>>,
{
    let crc = TableCrc::new(params);
    let tag = crc.checksum(message);
    let n_tag = params.tag_bytes();
    let mut framed = message.to_vec();
    framed.extend_from_slice(&tag.to_be_bytes()[8 - n_tag..]);

    let mut total = 0u64;
    let mut undetected = 0u64;
    for ev in errors {
        assert_eq!(
            ev.len(),
            framed.len(),
            "error vector length must match framed message length"
        );
        if ev.iter().all(|&b| b == 0) {
            continue; // the null vector is not an error
        }
        let corrupted: Vec<u8> = framed.iter().zip(&ev).map(|(&a, &b)| a ^ b).collect();
        total += 1;
        let (payload, tag_bytes) = corrupted.split_at(corrupted.len() - n_tag);
        let mut t = 0u64;
        for &b in tag_bytes {
            t = t << 8 | b as u64;
        }
        if crc.checksum(payload) == t {
            undetected += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        undetected as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_detects_all_bursts_up_to_width() {
        let report = burst_detection_exhaustive(CrcParams::CRC16_CCITT, b"noc packet", 16);
        assert_eq!(report.guaranteed_burst_coverage(), 16);
        assert!(report.tried_by_length.iter().all(|&t| t > 0));
    }

    #[test]
    fn crc8_detects_all_bursts_up_to_width() {
        let report = burst_detection_exhaustive(CrcParams::CRC8_ATM, b"tile", 8);
        assert_eq!(report.guaranteed_burst_coverage(), 8);
    }

    #[test]
    fn crc5_misses_some_longer_bursts() {
        // A 5-bit CRC cannot detect every burst of length > 6; verify the
        // analysis finds at least one escape for some longer burst.
        let report = burst_detection_exhaustive(CrcParams::CRC5_USB, b"abcdef", 12);
        // Single-bit errors are always detected, even for a 5-bit CRC.
        assert!(report.guaranteed_burst_coverage() >= 1);
        let any_miss = report.undetected_by_length.iter().any(|&n| n > 0);
        assert!(any_miss, "expected undetected long bursts for a 5-bit crc");
    }

    #[test]
    fn undetected_fraction_zero_for_single_bit_vectors() {
        let msg = b"hello";
        let framed_len = msg.len() + CrcParams::CRC16_CCITT.tag_bytes();
        let vectors = (0..framed_len * 8).map(|bit| {
            let mut v = vec![0u8; framed_len];
            v[bit / 8] ^= 0x80 >> (bit % 8);
            v
        });
        let frac = undetected_fraction(CrcParams::CRC16_CCITT, msg, vectors);
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn undetected_fraction_of_nothing_is_zero() {
        let frac = undetected_fraction(CrcParams::CRC8_ATM, b"x", std::iter::empty());
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn null_vector_is_not_counted() {
        let msg = b"abc";
        let framed_len = msg.len() + CrcParams::CRC8_ATM.tag_bytes();
        let frac = undetected_fraction(
            CrcParams::CRC8_ATM,
            msg,
            std::iter::once(vec![0u8; framed_len]),
        );
        assert_eq!(frac, 0.0);
    }
}
