//! **Grid-spread scalability** — §3.1's claim beyond Figure 3-1: "our
//! experimental results show that the messages can be disseminated
//! explosively fast among the tiles of the NoC for this \[grid\] topology
//! as well", and §4.1's "the gossip algorithms are known to scale
//! extremely well even beyond these dimensions".
//!
//! For growing grids, measures the rounds until a broadcast informs
//! every tile and compares the growth against the fully-connected
//! `S_n = log2 n + ln n` landmark and against the grid diameter (the
//! flooding lower bound).

use noc_fabric::{NodeId, Topology};
use stochastic_noc::{spread, SimulationBuilder, StochasticConfig};

use crate::stats::mean;
use crate::{Scale, TrialRunner};

/// One grid size's spread measurements.
#[derive(Debug, Clone)]
pub struct GridSpreadRow {
    /// Grid side (tiles = side²).
    pub side: usize,
    /// Network diameter (flooding's full-coverage bound).
    pub diameter: usize,
    /// Mean rounds to inform every tile under flooding.
    pub flooding_rounds: f64,
    /// Mean rounds to inform every tile at `p = 0.5`.
    pub gossip_rounds: Option<f64>,
    /// The fully-connected `S_n` landmark for the same node count.
    pub s_n: f64,
}

fn rounds_to_full_coverage(topology: &Topology, p: f64, seed: u64) -> Option<u64> {
    let n = topology.node_count();
    let ttl = (4 * topology.diameter().expect("connected")).max(16) as u8;
    let mut sim = SimulationBuilder::new(topology.clone())
        .config(
            StochasticConfig::new(p, ttl.min(120))
                .expect("valid")
                .with_max_rounds(400),
        )
        .shards(crate::runner::default_shards())
        .seed(seed)
        .build();
    let corner = NodeId(0);
    let opposite = NodeId(n - 1);
    let id = sim.inject(corner, opposite, vec![0xAA; 8]);
    for _ in 0..400u64 {
        let stats = sim.step();
        if sim.informed_count(id) == n {
            // stats.round is the round just executed; a tile at hop
            // distance d learns the message during round d.
            return Some(stats.round);
        }
    }
    None
}

/// Runs the scalability sweep.
pub fn run(scale: Scale) -> Vec<GridSpreadRow> {
    let sides: Vec<usize> = match scale {
        Scale::Quick => vec![4, 6, 8],
        Scale::Full => vec![4, 6, 8, 12, 16],
    };
    let reps = scale.repetitions();
    sides
        .into_iter()
        .map(|side| {
            let topology = Topology::grid(side, side);
            let diameter = topology.diameter().expect("connected");
            let flood: Vec<f64> =
                TrialRunner::for_figure(&format!("grid-spread/flood/{side}"), reps)
                    .run(|seed| rounds_to_full_coverage(&topology, 1.0, seed))
                    .into_iter()
                    .flatten()
                    .map(|r| r as f64)
                    .collect();
            let gossip: Vec<f64> =
                TrialRunner::for_figure(&format!("grid-spread/gossip/{side}"), reps)
                    .run(|seed| rounds_to_full_coverage(&topology, 0.5, seed))
                    .into_iter()
                    .flatten()
                    .map(|r| r as f64)
                    .collect();
            GridSpreadRow {
                side,
                diameter,
                flooding_rounds: mean(&flood).expect("flooding always covers"),
                gossip_rounds: mean(&gossip),
                s_n: spread::rounds_to_inform_all(side * side),
            }
        })
        .collect()
}

/// Prints the scalability table.
pub fn print(rows: &[GridSpreadRow]) {
    crate::stats::print_table_header(
        "Grid spread scalability: rounds to inform every tile",
        &[
            "side",
            "tiles",
            "diameter",
            "flooding",
            "gossip p=0.5",
            "S_n (full graph)",
        ],
    );
    for r in rows {
        println!(
            "{}\t{}\t{}\t{:.1}\t{}\t{:.1}",
            r.side,
            r.side * r.side,
            r.diameter,
            r.flooding_rounds,
            r.gossip_rounds
                .map_or("-".to_string(), |g| format!("{g:.1}")),
            r.s_n
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flooding_covers_in_exactly_the_diameter() {
        let rows = run(Scale::Quick);
        for r in &rows {
            assert_eq!(
                r.flooding_rounds, r.diameter as f64,
                "side {}: flooding {} vs diameter {}",
                r.side, r.flooding_rounds, r.diameter
            );
        }
    }

    #[test]
    fn gossip_overhead_over_flooding_is_bounded() {
        // "Explosively fast": p = 0.5 stays within a small constant
        // factor of the flooding optimum at every size.
        let rows = run(Scale::Quick);
        for r in &rows {
            let gossip = r.gossip_rounds.expect("p=0.5 covers the grid");
            let factor = gossip / r.flooding_rounds;
            assert!(factor < 3.5, "side {}: gossip {}x flooding", r.side, factor);
        }
    }

    #[test]
    fn growth_is_sublinear_in_tile_count() {
        let rows = run(Scale::Quick);
        let first = &rows[0];
        let last = rows.last().unwrap();
        let tiles_ratio = (last.side * last.side) as f64 / (first.side * first.side) as f64;
        let rounds_ratio = last.gossip_rounds.unwrap() / first.gossip_rounds.unwrap();
        assert!(
            rounds_ratio < tiles_ratio / 1.5,
            "rounds grew {rounds_ratio:.1}x for {tiles_ratio:.1}x tiles"
        );
    }
}
