//! **Hostile scenario sweep** — ch. 5 style comparison of the gossip
//! protocol under the adversarial fault taxonomy: transient partitions,
//! permanent link/tile death, chaos jitter (latency + reordering), and
//! Byzantine tiles that forge or replay CRC-valid frames.
//!
//! Each scenario replays the identical corner-to-corner workload on a
//! grid; every trial runs with a `CounterSink` and is reconciled
//! against its report, so the table doubles as an end-to-end audit of
//! the adversarial event plumbing.
//!
//! When the CLI installs a trace path (`--trace-events PATH`), trial 0
//! of the `combined` scenario streams its full event log there as JSON
//! Lines. When it installs `--reconcile-json PATH`, the merged
//! event-counter totals and report counters of every scenario are
//! written there as a JSON document.

use std::fs::File;
use std::io::{BufWriter, Write};

use noc_fabric::{NodeId, Topology};
use noc_faults::{AdversarialScenario, ByzantineMode, ErrorModel, FaultModel};
use stochastic_noc::events::{CounterSink, EventCounts, EventSink, JsonlSink, TeeSink};
use stochastic_noc::{Simulation, SimulationBuilder, SimulationReport};

use crate::{Scale, TrialRunner};

/// Aggregated outcome of one adversarial scenario.
#[derive(Debug, Clone)]
pub struct HostileRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Fraction of messages delivered, averaged over trials.
    pub delivery_ratio: f64,
    /// Mean delivery latency in rounds (delivered messages only).
    pub latency_rounds: f64,
    /// Mean packet transmissions per trial.
    pub packets: f64,
    /// Total partition drops over all trials.
    pub partition_drops: u64,
    /// Total Byzantine frames (forges + replays) over all trials.
    pub byzantine_frames: u64,
    /// Total chaos interventions (delays + reorders) over all trials.
    pub chaos_interventions: u64,
    /// Total crash drops (includes permanent death) over all trials.
    pub crash_drops: u64,
    /// Merged event-counter totals over all trials.
    pub event_totals: EventCounts,
    /// Summed report counters over all trials, for the reconciliation
    /// artifact: `(partition, forges, replays, delays, reorders,
    /// crash)`.
    pub report_totals: (u64, u64, u64, u64, u64, u64),
}

/// The named scenario grammar the sweep walks. `baseline` comes first
/// so the hostile deltas read against it.
pub fn scenarios() -> Vec<(&'static str, AdversarialScenario)> {
    vec![
        ("baseline", AdversarialScenario::benign()),
        (
            "partition-heal",
            AdversarialScenario::builder()
                .cut_links(20..28, 3, Some(9))
                .build()
                .expect("valid"),
        ),
        (
            "permanent-death",
            AdversarialScenario::builder()
                .kill_tile(14, 2)
                .kill_tile(21, 6)
                .kill_link(40, 0)
                .build()
                .expect("valid"),
        ),
        (
            "chaos-jitter",
            AdversarialScenario::builder()
                .delay_probability(0.15)
                .reorder_probability(0.2)
                .build()
                .expect("valid"),
        ),
        (
            "byzantine-forge",
            AdversarialScenario::builder()
                .byzantine_tile(7)
                .byzantine_tile(28)
                .byzantine_mode(ByzantineMode::Forge)
                .byzantine_activation(0.5)
                .build()
                .expect("valid"),
        ),
        (
            "byzantine-replay",
            AdversarialScenario::builder()
                .byzantine_tile(7)
                .byzantine_tile(28)
                .byzantine_mode(ByzantineMode::Replay)
                .byzantine_activation(0.5)
                .byzantine_until(Some(20))
                .build()
                .expect("valid"),
        ),
        (
            "combined",
            AdversarialScenario::builder()
                .cut_links([10, 11], 2, Some(7))
                .kill_tile(20, 4)
                .delay_probability(0.1)
                .reorder_probability(0.1)
                .byzantine_tile(13)
                .byzantine_mode(ByzantineMode::Forge)
                .byzantine_activation(0.4)
                .build()
                .expect("valid"),
        ),
    ]
}

fn builder(scale: Scale, adversary: &AdversarialScenario, seed: u64) -> SimulationBuilder {
    let side = match scale {
        Scale::Quick => 6,
        Scale::Full => 8,
    };
    let model = FaultModel::builder()
        .p_upset(0.05)
        .sigma_synch(0.2)
        .error_model(ErrorModel::RandomErrorVector)
        .build()
        .expect("valid model");
    let mut builder = SimulationBuilder::new(Topology::grid(side, side))
        .forward_probability(0.6)
        .ttl(15)
        .max_rounds(60)
        .fault_model(model)
        .adversary(adversary.clone())
        .shards(crate::runner::default_shards())
        .seed(seed);
    if let Some(obs) = crate::runner::engine_obs() {
        builder = builder.obs(obs);
    }
    builder
}

fn inject_workload(sim: &mut Simulation<impl EventSink>, side: usize) {
    let n = side * side;
    sim.inject(NodeId(0), NodeId(n - 1), b"hostile sweep".to_vec());
    sim.inject(NodeId(side - 1), NodeId(n - side), b"cross".to_vec());
}

fn run_one(
    scale: Scale,
    adversary: &AdversarialScenario,
    seed: u64,
) -> (SimulationReport, CounterSink) {
    let side = match scale {
        Scale::Quick => 6,
        Scale::Full => 8,
    };
    let mut sim = builder(scale, adversary, seed).build_with_sink(CounterSink::new());
    inject_workload(&mut sim, side);
    let report = sim.run();
    let counters = sim.into_sink();
    counters
        .reconcile(&report)
        .unwrap_or_else(|m| panic!("hostile trial failed reconciliation: {m}"));
    (report, counters)
}

/// Runs every scenario over the sweep's seeds.
pub fn run(scale: Scale) -> Vec<HostileRow> {
    let trace_to = crate::runner::trace_path();
    let side = match scale {
        Scale::Quick => 6,
        Scale::Full => 8,
    };
    let reps = scale.repetitions();
    let mut rows = Vec::new();
    for (name, adversary) in scenarios() {
        let results: Vec<(SimulationReport, CounterSink)> =
            TrialRunner::for_figure(&format!("hostile-{name}"), reps).run_indexed(|index, seed| {
                if let (Some(path), 0, "combined") = (&trace_to, index, name) {
                    // The traced trial runs ONCE with a tee: the JSONL
                    // stream and the row's reconciled CounterSink observe
                    // the same event sequence from the same run.
                    let file = File::create(path)
                        .unwrap_or_else(|e| panic!("--trace-events: cannot create {path}: {e}"));
                    let tee =
                        TeeSink::new(JsonlSink::new(BufWriter::new(file)), CounterSink::new());
                    let mut sim = builder(scale, &adversary, seed).build_with_sink(tee);
                    inject_workload(&mut sim, side);
                    let report = sim.run();
                    let (jsonl, counters) = sim.into_sink().into_parts();
                    let events = jsonl.events_written();
                    let _ = jsonl.into_inner(); // flushes
                    eprintln!("[trace] hostile/combined trial 0: {events} events -> {path}");
                    counters.reconcile(&report).unwrap_or_else(|m| {
                        panic!("hostile traced trial failed reconciliation: {m}")
                    });
                    return (report, counters);
                }
                run_one(scale, &adversary, seed)
            });
        let n = results.len() as f64;
        let mut merged = CounterSink::new();
        let mut injected = 0u64;
        let mut delivered = 0u64;
        let mut latency_sum = 0.0;
        let mut latency_trials = 0u64;
        let mut packets = 0u64;
        let mut report_totals = (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for (report, counters) in &results {
            merged.merge(counters);
            injected += report.messages_injected() as u64;
            delivered += report.messages_delivered() as u64;
            if let Some(latency) = report.average_latency() {
                latency_sum += latency;
                latency_trials += 1;
            }
            packets += report.packets_sent;
            report_totals.0 += report.partition_drops;
            report_totals.1 += report.byzantine_forges;
            report_totals.2 += report.byzantine_replays;
            report_totals.3 += report.adversarial_delays;
            report_totals.4 += report.adversarial_reorders;
            report_totals.5 += report.crash_drops;
        }
        let totals = *merged.totals();
        rows.push(HostileRow {
            scenario: name,
            delivery_ratio: if injected == 0 {
                1.0
            } else {
                delivered as f64 / injected as f64
            },
            latency_rounds: if latency_trials == 0 {
                0.0
            } else {
                latency_sum / latency_trials as f64
            },
            packets: packets as f64 / n,
            partition_drops: totals.partition_drops,
            byzantine_frames: totals.byzantine_forges + totals.byzantine_replays,
            chaos_interventions: totals.adversarial_delays + totals.adversarial_reorders,
            crash_drops: totals.crash_drops,
            event_totals: totals,
            report_totals,
        });
    }
    if let Some(path) = crate::runner::reconcile_json_path() {
        write_reconcile_json(&path, &rows)
            .unwrap_or_else(|e| panic!("--reconcile-json: cannot write {path}: {e}"));
        eprintln!("[reconcile] hostile: {} scenarios -> {path}", rows.len());
    }
    rows
}

/// Writes the hand-rolled reconciliation artifact: per scenario, the
/// merged event-counter totals next to the summed report counters. CI
/// parses this to prove the two bookkeeping paths agree.
fn write_reconcile_json(path: &str, rows: &[HostileRow]) -> std::io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    writeln!(out, "{{\"figure\":\"hostile\",\"scenarios\":[")?;
    for (i, row) in rows.iter().enumerate() {
        let t = &row.event_totals;
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "{{\"scenario\":\"{}\",\"events\":{{\"partition_drops\":{},\"byzantine_forges\":{},\"byzantine_replays\":{},\"adversarial_delays\":{},\"adversarial_reorders\":{},\"crash_drops\":{}}},\"report\":{{\"partition_drops\":{},\"byzantine_forges\":{},\"byzantine_replays\":{},\"adversarial_delays\":{},\"adversarial_reorders\":{},\"crash_drops\":{}}},\"reconciled\":true}}{}",
            row.scenario,
            t.partition_drops,
            t.byzantine_forges,
            t.byzantine_replays,
            t.adversarial_delays,
            t.adversarial_reorders,
            t.crash_drops,
            row.report_totals.0,
            row.report_totals.1,
            row.report_totals.2,
            row.report_totals.3,
            row.report_totals.4,
            row.report_totals.5,
            comma,
        )?;
    }
    writeln!(out, "]}}")?;
    Ok(())
}

/// Prints the hostile comparison table.
pub fn print(rows: &[HostileRow]) {
    crate::stats::print_table_header(
        "Hostile scenarios: gossip under partitions, permanent death, chaos and Byzantine tiles",
        &[
            "scenario",
            "delivery",
            "latency [rounds]",
            "packets",
            "partition drops",
            "byzantine frames",
            "chaos holds",
            "crash drops",
        ],
    );
    for r in rows {
        println!(
            "{}\t{:.2}\t{:.1}\t{:.0}\t{}\t{}\t{}\t{}",
            r.scenario,
            r.delivery_ratio,
            r.latency_rounds,
            r.packets,
            r.partition_drops,
            r.byzantine_frames,
            r.chaos_interventions,
            r.crash_drops,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_row_is_clean_and_hostile_rows_fire() {
        let rows = run(Scale::Quick);
        assert_eq!(rows[0].scenario, "baseline");
        assert_eq!(rows[0].partition_drops, 0);
        assert_eq!(rows[0].byzantine_frames, 0);
        assert_eq!(rows[0].chaos_interventions, 0);

        let by_name = |name: &str| {
            rows.iter()
                .find(|r| r.scenario == name)
                .expect("scenario present")
        };
        assert!(by_name("partition-heal").partition_drops > 0);
        assert!(by_name("permanent-death").crash_drops > 0);
        assert!(by_name("chaos-jitter").chaos_interventions > 0);
        assert!(by_name("byzantine-forge").byzantine_frames > 0);
        assert!(by_name("byzantine-replay").byzantine_frames > 0);
        let combined = by_name("combined");
        assert!(combined.partition_drops > 0);
        assert!(combined.byzantine_frames > 0);
        assert!(combined.chaos_interventions > 0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run(Scale::Quick);
        let b = run(Scale::Quick);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.packets, y.packets);
            assert_eq!(x.partition_drops, y.partition_drops);
            assert_eq!(x.byzantine_frames, y.byzantine_frames);
            assert_eq!(x.chaos_interventions, y.chaos_interventions);
        }
    }

    #[test]
    fn event_totals_match_report_totals() {
        for row in run(Scale::Quick) {
            let t = &row.event_totals;
            assert_eq!(
                (
                    t.partition_drops,
                    t.byzantine_forges,
                    t.byzantine_replays,
                    t.adversarial_delays,
                    t.adversarial_reorders,
                    t.crash_drops,
                ),
                row.report_totals,
                "scenario {}",
                row.scenario
            );
        }
    }

    #[test]
    fn reconcile_json_artifact_is_written() {
        let dir = std::env::temp_dir().join("hostile_reconcile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("reconcile.json");
        crate::runner::set_reconcile_json_path(Some(path.to_string_lossy().into_owned()));
        let rows = run(Scale::Quick);
        crate::runner::set_reconcile_json_path(None);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"figure\":\"hostile\""));
        assert!(text.contains("\"reconciled\":true"));
        for row in &rows {
            assert!(text.contains(&format!("\"scenario\":\"{}\"", row.scenario)));
        }
        std::fs::remove_file(&path).ok();
    }
}
