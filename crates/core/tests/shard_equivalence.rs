//! Shard-count independence: the sharded round engine must be a pure
//! performance knob.
//!
//! For any topology, fault model, crash schedule, adversarial scenario,
//! and seed, running the same trial at `--shards 1`, 2, 3, 7, or 8 must
//! produce a byte-identical event stream and an identical report — the
//! shard count may change which thread executes a tile, never what the
//! tile does or in which order the merged results are observed. The
//! single-shard engine is in turn checked against the naive
//! [`ReferenceSimulation`], closing the chain
//! `reference == shards(1) == shards(k)`.
//!
//! Also regression-covers the frontier-derived [`RoundStats`] (against
//! full-grid buffer recounts under faults) and `RoundQuiescent`
//! accounting for in-flight chaos-delayed frames.

mod common;

use common::{
    adversary_strategy, build_adversary, build_schedule, crash_strategy, fault_model_strategy,
    observe, topology_strategy, Observables,
};
use noc_fabric::{NodeId, Topology};
use noc_faults::{AdversarialScenario, CrashSchedule, FaultModel};
use proptest::prelude::*;
use stochastic_noc::reference::ReferenceSimulation;
use stochastic_noc::{CounterSink, JsonlSink, SimulationBuilder, StochasticConfig};

/// Shard counts exercised against the single-shard baseline: even and
/// odd, dividing and non-dividing, and more shards than some topologies
/// have tiles (the builder clamps).
const SHARD_COUNTS: [usize; 4] = [2, 3, 7, 8];

/// One full trial at a given shard count, capturing the report, the
/// serialized event stream, and the quiescent-round tally.
#[allow(clippy::too_many_arguments)]
fn run_trial(
    topology: &Topology,
    config: StochasticConfig,
    model: FaultModel,
    schedule: &CrashSchedule,
    adversary: &AdversarialScenario,
    seed: u64,
    shards: usize,
    injections: &[(usize, usize, Vec<u8>)],
) -> (Observables, u64, String) {
    let n = topology.node_count();
    let mut sim = SimulationBuilder::new(topology.clone())
        .config(config)
        .fault_model(model)
        .crash_schedule(schedule.clone())
        .adversary(adversary.clone())
        .seed(seed)
        .shards(shards)
        .build_with_sink(JsonlSink::new(Vec::new()));
    for (src, dst, payload) in injections {
        sim.inject(NodeId(src % n), NodeId(dst % n), payload.clone());
    }
    let report = sim.run();
    let quiescent = report.quiescent_rounds;
    let events = String::from_utf8(sim.into_sink().into_inner()).expect("JSONL is UTF-8");
    (observe(&report), quiescent, events)
}

/// Points at the first line where two event streams diverge, so a
/// failure names the offending event instead of dumping both streams.
fn first_divergence(baseline: &str, other: &str) -> Option<(usize, String, String)> {
    let mut a = baseline.lines();
    let mut b = other.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (a.next(), b.next()) {
            (None, None) => return None,
            (x, y) if x == y => {}
            (x, y) => {
                return Some((
                    line,
                    x.unwrap_or("<stream ended>").to_string(),
                    y.unwrap_or("<stream ended>").to_string(),
                ))
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The core shard-count-independence property: identical reports,
    /// identical quiescent-round tallies, and byte-identical event
    /// streams at every shard count, with the single-shard run itself
    /// matching the naive reference.
    #[test]
    fn reports_and_event_streams_are_shard_count_independent(
        topology in topology_strategy(),
        p in 0.25f64..=1.0,
        ttl in 4u8..16,
        model in fault_model_strategy(),
        (tile_kills, link_kills) in crash_strategy(),
        raw in adversary_strategy(),
        seed in any::<u64>(),
        injections in proptest::collection::vec(
            (0usize..64, 0usize..64, proptest::collection::vec(any::<u8>(), 0..24)),
            1..4,
        ),
    ) {
        let n = topology.node_count();
        let m = topology.link_count();
        let schedule = build_schedule(&tile_kills, &link_kills, n, m);
        let adversary = build_adversary(&raw, n, m);
        let config = StochasticConfig::new(p, ttl)
            .expect("valid config")
            .with_max_rounds(50);

        let (base_obs, base_quiescent, base_events) = run_trial(
            &topology, config, model, &schedule, &adversary, seed, 1, &injections,
        );

        // The single-shard engine still matches the naive reference.
        let mut reference = ReferenceSimulation::new_with_adversary(
            topology.clone(),
            config,
            model,
            schedule.clone(),
            adversary.clone(),
            seed,
        );
        for (src, dst, payload) in &injections {
            reference.inject(NodeId(src % n), NodeId(dst % n), payload.clone());
        }
        let naive = observe(&reference.run());
        prop_assert_eq!(&base_obs, &naive, "shards=1 diverged from the reference");

        for shards in SHARD_COUNTS {
            let (obs, quiescent, events) = run_trial(
                &topology, config, model, &schedule, &adversary, seed, shards, &injections,
            );
            prop_assert_eq!(&obs, &base_obs, "report diverged at shards={}", shards);
            prop_assert_eq!(
                quiescent, base_quiescent,
                "quiescent-round tally diverged at shards={}", shards
            );
            if let Some((line, want, got)) = first_divergence(&base_events, &events) {
                prop_assert!(
                    false,
                    "event stream diverged at shards={} line {}:\n  shards=1: {}\n  shards={}: {}",
                    shards, line, want, shards, got
                );
            }
        }
    }
}

/// A faulty, adversarial 6×6 scenario reused by the deterministic
/// regression tests below.
fn faulty_scenario() -> (Topology, StochasticConfig, FaultModel, CrashSchedule) {
    let topology = Topology::grid(6, 6);
    let config = StochasticConfig::new(0.6, 9)
        .expect("valid config")
        .with_max_rounds(40);
    let model = FaultModel::builder()
        .p_upset(0.15)
        .p_overflow(0.1)
        .sigma_synch(0.25)
        .p_tiles(0.05)
        .p_links(0.05)
        .build()
        .expect("valid model");
    let mut schedule = CrashSchedule::new();
    schedule.kill_tile(7, 3);
    schedule.kill_link(11, 5);
    (topology, config, model, schedule)
}

/// `run_with_history` must agree with a plain `run` under faults, and
/// every round's frontier-derived `live_messages` must equal a full-grid
/// recount of the send buffers — the regression net for deriving
/// [`RoundStats`] from frontier bookkeeping instead of O(n) scans.
#[test]
fn history_stats_match_full_grid_recount_under_faults() {
    let (topology, config, model, schedule) = faulty_scenario();
    let n = topology.node_count();
    let build = |shards: usize| {
        let mut sim = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .crash_schedule(schedule.clone())
            .seed(20030308)
            .shards(shards)
            .build();
        sim.inject(NodeId(0), NodeId(35), vec![0xAB; 12]);
        sim.inject(NodeId(17), NodeId(3), vec![0xCD; 5]);
        sim
    };

    for shards in [1, 4] {
        let plain = observe(&build(shards).run());
        let (report, history) = build(shards).run_with_history();
        assert_eq!(
            observe(&report),
            plain,
            "run_with_history report diverged from run() at shards={shards}"
        );
        assert_eq!(history.len() as u64, report.rounds_executed);
        let total: u64 = history.iter().map(|s| s.transmissions).sum();
        assert_eq!(total, report.packets_sent);
        let delivered: u64 = history.iter().map(|s| s.deliveries).sum();
        assert_eq!(
            delivered,
            observe(&report)
                .records
                .iter()
                .filter(|r| r.4.is_some())
                .count() as u64
        );

        // Step an identical sim manually and recount every buffer after
        // each round: the frontier-derived live_messages must be exact.
        let mut sim = build(shards);
        for stats in &history {
            let stepped = sim.step();
            assert_eq!(
                stepped, *stats,
                "per-round stats diverged at shards={shards}"
            );
            let recount: usize = (0..n).map(|t| sim.buffer_len(NodeId(t))).sum();
            assert_eq!(
                stepped.live_messages, recount as u64,
                "frontier live_messages drifted from buffer recount at shards={shards}, \
                 round {}",
                stepped.round
            );
        }
    }
}

/// The wall-clock observability plane must be invisible to the
/// deterministic plane: running the faulty regression scenario with a
/// [`noc_obs::Metrics`] registry and [`stochastic_noc::EngineObs`]
/// installed must reproduce the uninstrumented JSONL event stream and
/// report byte-for-byte, at shards=1 and through the sharded loop —
/// while the registry itself proves the spans actually recorded.
#[test]
fn event_streams_are_byte_identical_with_obs_plane_enabled() {
    let (topology, config, model, schedule) = faulty_scenario();
    let adversary = AdversarialScenario::builder()
        .delay_probability(0.1)
        .reorder_probability(0.1)
        .build()
        .expect("valid scenario");
    let injections: Vec<(usize, usize, Vec<u8>)> = vec![
        (0, 35, vec![0xAB; 12]),
        (17, 3, vec![0xCD; 5]),
        (35, 0, vec![0xEF; 3]),
    ];
    let seed = 20260806;

    let run = |shards: usize, obs: Option<stochastic_noc::EngineObs>| {
        let n = topology.node_count();
        let mut builder = SimulationBuilder::new(topology.clone())
            .config(config)
            .fault_model(model)
            .crash_schedule(schedule.clone())
            .adversary(adversary.clone())
            .seed(seed)
            .shards(shards);
        if let Some(obs) = obs {
            builder = builder.obs(obs);
        }
        let mut sim = builder.build_with_sink(JsonlSink::new(Vec::new()));
        for (src, dst, payload) in &injections {
            sim.inject(NodeId(src % n), NodeId(dst % n), payload.clone());
        }
        let report = sim.run();
        let events = String::from_utf8(sim.into_sink().into_inner()).expect("JSONL is UTF-8");
        (observe(&report), events)
    };

    let (plain_report, plain_events) = run(1, None);
    for shards in [1usize, 2, 4] {
        let metrics = noc_obs::Metrics::new();
        let obs = stochastic_noc::EngineObs::new(&metrics);
        let (report, events) = run(shards, Some(obs));
        assert_eq!(
            report, plain_report,
            "report diverged with obs plane enabled at shards={shards}"
        );
        if let Some((line, want, got)) = first_divergence(&plain_events, &events) {
            panic!(
                "obs-enabled event stream diverged at shards={shards} line {line}:\n  \
                 plain: {want}\n  obs:   {got}"
            );
        }
        assert!(
            metrics.counter_value("engine_rounds_total").unwrap_or(0) > 0,
            "obs plane recorded no rounds at shards={shards}"
        );
    }
}

/// With every transmission chaos-delayed, the buffers drain before the
/// frames land: those rounds are quiescent-but-not-complete, and the
/// engine must neither terminate early nor miss the `RoundQuiescent`
/// events. The `CounterSink` tally must reconcile with the report.
#[test]
fn quiescent_rounds_account_for_inflight_delayed_frames() {
    let adversary = AdversarialScenario::builder()
        .delay_probability(1.0)
        .build()
        .expect("valid scenario");
    for shards in [1, 3] {
        let mut sim = SimulationBuilder::new(Topology::grid(3, 3))
            .config(StochasticConfig::flooding(2).with_max_rounds(20))
            .adversary(adversary.clone())
            .seed(42)
            .shards(shards)
            .build_with_sink(CounterSink::new());
        sim.inject(NodeId(0), NodeId(8), vec![1, 2, 3]);
        let report = sim.run();
        assert!(
            report.quiescent_rounds > 0,
            "delay-everything run never went quiescent at shards={shards}"
        );
        assert!(
            report.rounds_executed > 1,
            "engine terminated while delayed frames were in flight at shards={shards}"
        );
        assert!(report.completed, "run should drain and complete");
        let sink = sim.into_sink();
        assert_eq!(sink.quiescent_rounds(), report.quiescent_rounds);
        sink.reconcile(&report).expect("counters reconcile");
    }
}
