//! **Mega-grid** — shard-engine demonstration at scales far beyond the
//! paper's 4×4 fabric.
//!
//! Floods a 64×64 (and, at `--full`, a 128×128) grid with a burst of
//! corner-to-corner broadcasts, fault-free and under the baseline fault
//! model, exercising the intra-trial sharded round loop and the
//! active-frontier worklist. The table reports only deterministic
//! quantities (rounds, packets, deliveries, quiescent rounds), so its
//! bytes are identical for every `--shards` and `--threads` value;
//! wall-clock observability goes to the runner summary on stderr and,
//! under `--metrics-out`, to per-phase engine span histograms.

use noc_fabric::{MessageId, NodeId, Topology};
use noc_faults::FaultModel;
use stochastic_noc::{
    Checkpoint, Simulation, SimulationBuilder, SimulationReport, StochasticConfig,
};

use crate::{runner, Scale, TrialRunner};

/// One mega-grid configuration's aggregate outcome.
#[derive(Debug, Clone)]
pub struct MegaGridRow {
    /// Grid side (the fabric is `side × side`).
    pub side: usize,
    /// "fault-free" or "faulty".
    pub regime: &'static str,
    /// Broadcasts injected.
    pub messages: usize,
    /// Rounds the engine executed.
    pub rounds: u64,
    /// Messages that reached their destination.
    pub delivered: usize,
    /// Total frames pushed onto links.
    pub packets_sent: u64,
    /// Rounds that ended with empty buffers but frames still in flight.
    pub quiescent_rounds: u64,
}

/// The baseline fault regime used by the faulty rows.
fn faulty_model() -> FaultModel {
    FaultModel::builder()
        .p_upset(0.05)
        .p_overflow(0.02)
        .sigma_synch(0.1)
        .build()
        .expect("valid model")
}

fn make_builder(side: usize, regime: &'static str, seed: u64) -> SimulationBuilder {
    // Enough TTL to cross the grid diagonal with margin, capped at u8.
    let ttl = u8::try_from((2 * (side - 1) + side / 2).min(250)).expect("capped");
    let model = match regime {
        "faulty" => faulty_model(),
        _ => FaultModel::none(),
    };
    let mut builder = SimulationBuilder::new(Topology::grid(side, side))
        .config(
            StochasticConfig::new(0.75, ttl)
                .expect("valid config")
                .with_max_rounds(4 * side as u64)
                .with_termination(true),
        )
        .fault_model(model)
        .shards(runner::default_shards())
        .seed(seed);
    if let Some(obs) = runner::engine_obs() {
        builder = builder.obs(obs);
    }
    builder
}

/// Restores the simulation for this configuration from `--resume PATH`
/// when the checkpoint's configuration digest matches; `None` means
/// "start fresh" (no resume requested, unreadable file, or a checkpoint
/// belonging to one of the *other* mega-grid configurations).
fn try_resume(side: usize, regime: &'static str, seed: u64) -> Option<Simulation> {
    let path = runner::resume_path()?;
    let checkpoint = match Checkpoint::load(&path) {
        Ok(ck) => ck,
        Err(err) => {
            eprintln!("mega-grid: cannot read checkpoint {path}: {err}");
            return None;
        }
    };
    match make_builder(side, regime, seed).resume(&checkpoint) {
        Ok(sim) => {
            eprintln!(
                "{{\"event\":\"resumed\",\"figure\":\"mega-grid-{side}-{regime}\",\"round\":{}}}",
                sim.round(),
            );
            Some(sim)
        }
        // Digest mismatch: the checkpoint is for a different
        // side/regime/seed. That configuration will pick it up; this
        // one reruns from round 0 (its table row is deterministic
        // either way).
        Err(_) => None,
    }
}

/// Steps `sim` to completion, writing a checkpoint into
/// `--checkpoint-dir` every `every` rounds.
fn run_with_checkpoints(mut sim: Simulation, label: &str, every: u64) -> SimulationReport {
    let dir = runner::checkpoint_dir().unwrap_or_else(|| ".".to_string());
    let max_rounds = sim.config().max_rounds;
    while !sim.is_complete() && sim.round() < max_rounds {
        sim.step();
        if every > 0 && sim.round() % every == 0 {
            let path = format!("{dir}/{label}-round-{:06}.ckpt", sim.round());
            match sim.checkpoint().save(&path) {
                Ok(()) => eprintln!(
                    "{{\"event\":\"checkpoint\",\"figure\":\"{label}\",\"round\":{},\"path\":\"{path}\"}}",
                    sim.round(),
                ),
                Err(err) => eprintln!("mega-grid: cannot write checkpoint {path}: {err}"),
            }
        }
    }
    // The loop above is `Simulation::run`'s own termination condition,
    // so this only finalizes and clones the report.
    sim.run()
}

fn run_one(side: usize, regime: &'static str, messages: usize, seed: u64) -> MegaGridRow {
    let n = side * side;
    let (sim, ids) = match try_resume(side, regime, seed) {
        // Injections happened before the checkpoint was taken, so the
        // restored report already tracks them; ids are deterministic
        // (sequential from 0 in injection order).
        Some(sim) => {
            let ids: Vec<_> = (0..messages).map(|i| MessageId(i as u64)).collect();
            (sim, ids)
        }
        None => {
            let mut sim = make_builder(side, regime, seed).build();
            // Broadcast burst: sources striped across the fabric, each
            // targeting the diagonally opposite tile, so traffic crosses
            // every shard boundary in both directions.
            let ids: Vec<_> = (0..messages)
                .map(|i| {
                    let src = (i * n) / messages;
                    sim.inject(NodeId(src), NodeId(n - 1 - src), vec![0x5A; 8])
                })
                .collect();
            (sim, ids)
        }
    };
    let report = match runner::checkpoint_every() {
        Some(every) => {
            let label = format!("mega-grid-{side}-{regime}");
            run_with_checkpoints(sim, &label, every)
        }
        None => sim.run_to_report(),
    };
    MegaGridRow {
        side,
        regime,
        messages,
        rounds: report.rounds_executed,
        delivered: ids.iter().filter(|&&id| report.delivered(id)).count(),
        packets_sent: report.packets_sent,
        quiescent_rounds: report.quiescent_rounds,
    }
}

/// Runs the mega-grid scenarios for the given scale.
pub fn run(scale: Scale) -> Vec<MegaGridRow> {
    let configs: Vec<(usize, &'static str, usize)> = match scale {
        Scale::Quick => vec![(64, "fault-free", 8), (64, "faulty", 8)],
        Scale::Full => vec![
            (64, "fault-free", 32),
            (64, "faulty", 32),
            (128, "fault-free", 32),
            (128, "faulty", 32),
        ],
    };
    configs
        .into_iter()
        .map(|(side, regime, messages)| {
            let label = format!("mega-grid/{side}/{regime}");
            let seed = TrialRunner::for_figure(&label, 1).trial_seed(0);
            let rows = TrialRunner::for_figure(&label, 1)
                .run(move |_| run_one(side, regime, messages, seed));
            rows.into_iter().next().expect("one trial per config")
        })
        .collect()
}

/// Prints the mega-grid table.
pub fn print(rows: &[MegaGridRow]) {
    crate::stats::print_table_header(
        "Mega-grid: sharded round engine at 64x64 and beyond",
        &[
            "grid",
            "regime",
            "messages",
            "delivered",
            "rounds",
            "packets sent",
            "quiescent rounds",
        ],
    );
    for r in rows {
        println!(
            "{}x{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.side,
            r.side,
            r.regime,
            r.messages,
            r.delivered,
            r.rounds,
            r.packets_sent,
            r.quiescent_rounds,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_floods_the_64_grid() {
        let rows = run(Scale::Quick);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.side, 64);
            assert!(row.packets_sent > 0, "{} moved no traffic", row.regime);
            assert!(
                row.delivered > 0,
                "{} delivered nothing out of {}",
                row.regime,
                row.messages
            );
        }
    }

    #[test]
    fn sharded_run_records_engine_phase_spans() {
        use std::sync::Arc;

        // A sharded run with the wall-clock plane installed must time
        // every sharded-path phase — and produce the same deterministic
        // row as an uninstrumented run.
        let _guard = runner::GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let baseline = run_one(32, "faulty", 4, 7);
        let registry = Arc::new(noc_obs::Metrics::new());
        runner::install_metrics(Some(Arc::clone(&registry)));
        runner::set_default_shards(2);
        let observed = run_one(32, "faulty", 4, 7);
        runner::set_default_shards(1);
        runner::install_metrics(None);

        assert_eq!(observed.rounds, baseline.rounds);
        assert_eq!(observed.packets_sent, baseline.packets_sent);
        assert_eq!(observed.delivered, baseline.delivered);

        let snap = registry.snapshot();
        for phase in ["tape", "shard_fanout", "merge", "quiescence"] {
            let hist = snap
                .histograms
                .iter()
                .find(|h| {
                    h.name == "engine_phase_seconds"
                        && h.labels == vec![("phase".to_string(), phase.to_string())]
                })
                .unwrap_or_else(|| panic!("{phase} histogram registered"));
            assert!(hist.count > 0, "{phase} phase recorded spans");
            assert!(hist.sum_nanos > 0, "{phase} spans took nonzero time");
        }
        // `>=` rather than `==`: other concurrently-running figure tests
        // may record into the installed registry while it is live.
        let rounds = registry.counter_value("engine_rounds_total");
        assert!(
            rounds.unwrap_or(0) >= baseline.rounds,
            "every round counted: {rounds:?} vs {}",
            baseline.rounds
        );
    }

    #[test]
    fn checkpointed_run_resumes_to_the_identical_row() {
        let _guard = runner::GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let baseline = run_one(32, "faulty", 4, 7);
        let dir = std::env::temp_dir().join(format!("mega-grid-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create checkpoint dir");

        // A run with checkpointing on produces the same row...
        runner::set_checkpoint_every(5);
        runner::set_checkpoint_dir(Some(dir.to_string_lossy().into_owned()));
        let checkpointed = run_one(32, "faulty", 4, 7);
        runner::set_checkpoint_every(0);
        runner::set_checkpoint_dir(None);
        assert_eq!(format!("{checkpointed:?}"), format!("{baseline:?}"));

        // ...and resuming from a mid-run checkpoint reaches it too.
        let ckpt = dir.join("mega-grid-32-faulty-round-000005.ckpt");
        assert!(ckpt.exists(), "round-5 checkpoint written");
        runner::set_resume_path(Some(ckpt.to_string_lossy().into_owned()));
        let resumed = run_one(32, "faulty", 4, 7);
        // A non-matching configuration ignores the checkpoint and runs
        // fresh instead of panicking or corrupting its row.
        let other = run_one(32, "fault-free", 4, 7);
        runner::set_resume_path(None);
        let other_baseline = run_one(32, "fault-free", 4, 7);
        assert_eq!(format!("{resumed:?}"), format!("{baseline:?}"));
        assert_eq!(format!("{other:?}"), format!("{other_baseline:?}"));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rows_are_shard_count_independent() {
        let _guard = runner::GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let baseline = run_one(32, "faulty", 4, 99);
        for shards in [2usize, 8] {
            runner::set_default_shards(shards);
            let sharded = run_one(32, "faulty", 4, 99);
            runner::set_default_shards(1);
            assert_eq!(sharded.rounds, baseline.rounds, "shards={shards}");
            assert_eq!(sharded.delivered, baseline.delivered, "shards={shards}");
            assert_eq!(
                sharded.packets_sent, baseline.packets_sent,
                "shards={shards}"
            );
            assert_eq!(
                sharded.quiescent_rounds, baseline.quiescent_rounds,
                "shards={shards}"
            );
        }
    }
}
