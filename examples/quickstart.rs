//! Quickstart: the paper's Figure 3-3 producer–consumer example.
//!
//! A producer on tile 6 of a 4×4 NoC sends one message to a consumer on
//! tile 12 with no routing at all — the gossip spread finds it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ocsc::noc_fabric::{Grid2d, NodeId};
use ocsc::stochastic_noc::SimulationBuilder;

fn main() {
    // A 4x4 tile grid, forwarding probability p = 0.5, TTL 12.
    let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
        .forward_probability(0.5)
        .ttl(12)
        .seed(2003)
        .build();

    // Paper numbering is 1-based: producer = tile 6, consumer = tile 12.
    let producer = NodeId(5);
    let consumer = NodeId(11);
    let message = sim.inject(producer, consumer, b"hello, tile 12".to_vec());

    let report = sim.run();

    println!("On-Chip Stochastic Communication — quickstart");
    println!("network          : 4x4 grid, p = 0.5, ttl = 12");
    println!("message          : {producer} -> {consumer}");
    println!("delivered        : {}", report.delivered(message));
    if let Some(latency) = report.latency(message) {
        println!("latency          : {latency} rounds (manhattan distance is 3)");
    }
    println!("packets sent     : {}", report.packets_sent);
    println!("energy           : {}", report.total_energy());
    println!("rounds executed  : {}", report.rounds_executed);
}
