//! Visualize a gossip spread round by round as ASCII grids — the
//! programmatic version of the paper's Stateflow animation (Figure 4-1).
//!
//! ```text
//! cargo run --example spread_trace
//! ```

use ocsc::noc_fabric::{Grid2d, NodeId};
use ocsc::stochastic_noc::{SimulationBuilder, SpreadTrace, StochasticConfig};

fn main() {
    let grid = Grid2d::new(4, 4);
    let mut sim = SimulationBuilder::new(grid.clone())
        .config(
            StochasticConfig::new(0.5, 12)
                .expect("valid config")
                .with_max_rounds(30),
        )
        .seed(2003)
        .build();
    let producer = NodeId(5);
    let consumer = NodeId(11);
    let id = sim.inject(producer, consumer, b"trace me".to_vec());

    let trace = SpreadTrace::record(&mut sim, id, 30);

    println!("gossip spread {producer} -> {consumer} at p = 0.5 (# informed, D destination):");
    for (i, snap) in trace.snapshots().iter().enumerate().take(8) {
        if i == 0 {
            println!("initial state — informed {}:", snap.informed_count);
        } else {
            println!(
                "after round {} — informed {}, {} transmissions:",
                snap.round, snap.informed_count, snap.transmissions
            );
        }
        println!("{}", trace.render_grid(&grid, i, consumer));
    }
    println!("informed curve : {:?}", trace.informed_curve());
    println!("delivered at   : round {:?}", trace.delivery_round());
}
