//! Composable adversarial scenarios: partitions, permanent death,
//! link chaos, and Byzantine tiles.
//!
//! Where [`FaultModel`](crate::FaultModel) captures the paper's
//! *transient* deep-sub-micron failures (upsets, overflow, crash-and-
//! recover, clock skew), an [`AdversarialScenario`] models a genuinely
//! hostile fabric in the spirit of the Byzantine reliable-broadcast
//! literature:
//!
//! * [`PartitionSchedule`] — link sets cut at round `r` and healed at
//!   round `r'` (or never), splitting the fabric into islands;
//! * a permanent [`CrashSchedule`] — links and tiles that die at a
//!   scheduled round and never come back;
//! * [`LinkChaos`] — per-link message reordering and latency jitter,
//!   drawn from dedicated per-link RNG streams by the engine;
//! * [`ByzantineSet`] — tiles that forge or replay CRC-valid frames,
//!   attacking the receiver fast path that trusts locally-generated
//!   (never-scrambled) frames.
//!
//! The scenario types here are pure *configuration*: every collection
//! is a `BTreeSet`/`Vec` so iteration order is deterministic, and no
//! RNG state lives here. The simulation engine derives the per-link
//! and per-tile streams from its base seed (via `stochastic_noc::seed`)
//! so that a benign scenario leaves the main fault stream — and hence
//! every existing golden digest — byte-identical.
//!
//! # Examples
//!
//! ```
//! use noc_faults::{AdversarialScenario, ByzantineMode};
//!
//! let scenario = AdversarialScenario::builder()
//!     .cut_links([3, 7], 2, Some(6))
//!     .kill_link(11, 4)
//!     .reorder_probability(0.2)
//!     .delay_probability(0.1)
//!     .byzantine_tile(5)
//!     .byzantine_mode(ByzantineMode::Forge)
//!     .byzantine_activation(0.5)
//!     .byzantine_until(Some(10))
//!     .build()
//!     .expect("parameters in range");
//! assert!(!scenario.is_benign());
//! assert!(scenario.partitions.link_cut(3, 2));
//! assert!(!scenario.partitions.link_cut(3, 6));
//! ```

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::injector::CrashSchedule;

/// One scheduled partition: a set of links severed at `from_round`
/// (inclusive) and restored at `heal_round` (exclusive), or never when
/// `heal_round` is `None`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionCut {
    /// Link indices severed by this cut.
    pub links: BTreeSet<usize>,
    /// First round (inclusive) at which the links are cut.
    pub from_round: u64,
    /// Round (exclusive) at which the links heal; `None` means the cut
    /// is permanent.
    pub heal_round: Option<u64>,
}

impl PartitionCut {
    /// True if this cut severs `link` during `round`.
    pub fn severs(&self, link: usize, round: u64) -> bool {
        round >= self.from_round
            && self.heal_round.is_none_or(|heal| round < heal)
            && self.links.contains(&link)
    }
}

/// A schedule of network partitions with optional heals.
///
/// Frames forwarded onto a cut link during its active window are lost
/// (the sender still spends the transmission energy, exactly like a
/// dead link), and the engine reports each loss as a partition drop.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSchedule {
    cuts: Vec<PartitionCut>,
}

impl PartitionSchedule {
    /// An empty schedule: no link is ever cut.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a cut severing `links` from `from_round` (inclusive) until
    /// `heal_round` (exclusive; `None` = forever).
    pub fn cut(
        &mut self,
        links: impl IntoIterator<Item = usize>,
        from_round: u64,
        heal_round: Option<u64>,
    ) -> &mut Self {
        self.cuts.push(PartitionCut {
            links: links.into_iter().collect(),
            from_round,
            heal_round,
        });
        self
    }

    /// True if any cut severs `link` during `round`.
    pub fn link_cut(&self, link: usize, round: u64) -> bool {
        self.cuts.iter().any(|cut| cut.severs(link, round))
    }

    /// True if the schedule contains no cuts.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// The scheduled cuts, in insertion order.
    pub fn cuts(&self) -> &[PartitionCut] {
        &self.cuts
    }

    /// Validates every cut's window.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScenario`] if any cut heals at or before the
    /// round it starts, or severs no links at all.
    pub fn validate(&self) -> Result<(), InvalidScenario> {
        for (index, cut) in self.cuts.iter().enumerate() {
            if cut.links.is_empty() {
                return Err(InvalidScenario {
                    parameter: "partitions",
                    reason: format!("cut #{index} severs no links"),
                });
            }
            if let Some(heal) = cut.heal_round {
                if heal <= cut.from_round {
                    return Err(InvalidScenario {
                        parameter: "partitions",
                        reason: format!(
                            "cut #{index} heals at round {heal} but starts at round {}",
                            cut.from_round
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Per-link message chaos: reordering and latency jitter.
///
/// Each frame that survives link death, partition cuts and upsets is
/// subjected to two independent draws from *that link's* dedicated RNG
/// stream (derived by the engine from the base seed and the link
/// index): first a delay draw, then a reorder draw. A delayed frame
/// arrives one round later than the synchronous schedule; a reordered
/// frame jumps the receive queue of its destination tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkChaos {
    /// Probability that a delivered frame jumps to the front of its
    /// destination's receive queue.
    pub reorder_probability: f64,
    /// Probability that a delivered frame is delayed by one round.
    pub delay_probability: f64,
}

impl LinkChaos {
    /// Chaos-free configuration (both probabilities zero).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if either probability is non-zero, i.e. the engine must
    /// maintain per-link chaos streams.
    pub fn is_active(&self) -> bool {
        self.reorder_probability > 0.0 || self.delay_probability > 0.0
    }

    /// Validates both probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScenario`] naming the first probability outside
    /// `[0, 1]`.
    pub fn validate(&self) -> Result<(), InvalidScenario> {
        for (name, p) in [
            ("reorder_probability", self.reorder_probability),
            ("delay_probability", self.delay_probability),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(InvalidScenario {
                    parameter: name,
                    reason: format!("= {p} is not a probability in [0, 1]"),
                });
            }
        }
        Ok(())
    }
}

/// What a Byzantine tile does when its activation draw fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ByzantineMode {
    /// Forge an equivocation: re-encode a buffered message with a
    /// corrupted payload, producing a *CRC-valid* frame whose content
    /// disagrees with the original. This defeats receivers that trust
    /// never-scrambled frames without re-verifying payload bytes.
    #[default]
    Forge,
    /// Replay the frame the tile most recently forwarded legitimately,
    /// re-flooding stale traffic into the fabric.
    Replay,
}

/// The set of Byzantine tiles and their behaviour.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ByzantineSet {
    /// Indices of the compromised tiles.
    pub tiles: BTreeSet<usize>,
    /// What a compromised tile does when activated.
    pub mode: ByzantineMode,
    /// Per-round probability that a compromised tile attacks, drawn
    /// from that tile's dedicated RNG stream.
    pub activation_probability: f64,
    /// Last round (exclusive) the attack may fire; `None` = forever.
    /// Bounding the attack lets runs drain and complete.
    pub active_until: Option<u64>,
}

impl ByzantineSet {
    /// No compromised tiles.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if at least one tile is compromised and can ever activate.
    pub fn is_active(&self) -> bool {
        !self.tiles.is_empty() && self.activation_probability > 0.0
    }

    /// True if `tile` is compromised and the attack window covers
    /// `round`.
    pub fn armed(&self, tile: usize, round: u64) -> bool {
        self.active_until.is_none_or(|until| round < until) && self.tiles.contains(&tile)
    }

    /// Validates the activation probability.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScenario`] if it lies outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), InvalidScenario> {
        let p = self.activation_probability;
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(InvalidScenario {
                parameter: "activation_probability",
                reason: format!("= {p} is not a probability in [0, 1]"),
            });
        }
        Ok(())
    }
}

/// Error returned when an adversarial scenario parameter is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidScenario {
    /// Name of the offending parameter.
    pub parameter: &'static str,
    /// Human-readable description of the violation.
    pub reason: String,
}

impl fmt::Display for InvalidScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid adversarial scenario: {} {}",
            self.parameter, self.reason
        )
    }
}

impl Error for InvalidScenario {}

/// A composed adversarial scenario: partitions, permanent death, link
/// chaos and Byzantine tiles, any subset of which may be active.
///
/// The default scenario is [benign](AdversarialScenario::is_benign):
/// attaching it to a simulation changes nothing, consumes no RNG
/// draws, and leaves every digest byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversarialScenario {
    /// Scheduled partitions with optional heals.
    // noc-lint: allow(checkpoint-coverage, reason = "immutable run config, not evolving state: the whole scenario is hashed into the checkpoint config digest")
    pub partitions: PartitionSchedule,
    /// Permanent link/tile death schedule (never heals).
    // noc-lint: allow(checkpoint-coverage, reason = "immutable run config, not evolving state: the whole scenario is hashed into the checkpoint config digest")
    pub permanent: CrashSchedule,
    /// Per-link reordering and latency jitter.
    // noc-lint: allow(checkpoint-coverage, reason = "immutable run config, not evolving state: the whole scenario is hashed into the checkpoint config digest")
    pub chaos: LinkChaos,
    /// Byzantine forge/replay tiles.
    // noc-lint: allow(checkpoint-coverage, reason = "immutable run config, not evolving state: the whole scenario is hashed into the checkpoint config digest")
    pub byzantine: ByzantineSet,
}

impl AdversarialScenario {
    /// The benign scenario: no adversary at all.
    pub fn benign() -> Self {
        Self::default()
    }

    /// Starts building a scenario.
    pub fn builder() -> AdversarialScenarioBuilder {
        AdversarialScenarioBuilder::default()
    }

    /// True if every mechanism is inert: attaching this scenario to a
    /// simulation is a no-op.
    pub fn is_benign(&self) -> bool {
        self.partitions.is_empty()
            && self.permanent.dead_tile_count() == 0
            && self.permanent.dead_link_count() == 0
            && !self.chaos.is_active()
            && !self.byzantine.is_active()
    }

    /// Validates every mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScenario`] naming the first invalid parameter.
    pub fn validate(&self) -> Result<(), InvalidScenario> {
        self.partitions.validate()?;
        self.chaos.validate()?;
        self.byzantine.validate()
    }
}

/// Builder for [`AdversarialScenario`].
#[derive(Debug, Clone, Default)]
pub struct AdversarialScenarioBuilder {
    scenario: AdversarialScenario,
}

impl AdversarialScenarioBuilder {
    /// Adds a partition cut (see [`PartitionSchedule::cut`]).
    pub fn cut_links(
        mut self,
        links: impl IntoIterator<Item = usize>,
        from_round: u64,
        heal_round: Option<u64>,
    ) -> Self {
        self.scenario.partitions.cut(links, from_round, heal_round);
        self
    }

    /// Permanently kills `link` from `round` on.
    pub fn kill_link(mut self, link: usize, round: u64) -> Self {
        self.scenario.permanent.kill_link(link, round);
        self
    }

    /// Permanently kills `tile` from `round` on.
    pub fn kill_tile(mut self, tile: usize, round: u64) -> Self {
        self.scenario.permanent.kill_tile(tile, round);
        self
    }

    /// Sets the per-link reorder probability.
    pub fn reorder_probability(mut self, p: f64) -> Self {
        self.scenario.chaos.reorder_probability = p;
        self
    }

    /// Sets the per-link one-round delay probability.
    pub fn delay_probability(mut self, p: f64) -> Self {
        self.scenario.chaos.delay_probability = p;
        self
    }

    /// Marks `tile` as Byzantine.
    pub fn byzantine_tile(mut self, tile: usize) -> Self {
        self.scenario.byzantine.tiles.insert(tile);
        self
    }

    /// Selects the Byzantine attack mode.
    pub fn byzantine_mode(mut self, mode: ByzantineMode) -> Self {
        self.scenario.byzantine.mode = mode;
        self
    }

    /// Sets the per-round Byzantine activation probability.
    pub fn byzantine_activation(mut self, p: f64) -> Self {
        self.scenario.byzantine.activation_probability = p;
        self
    }

    /// Bounds the Byzantine attack window (exclusive end round).
    pub fn byzantine_until(mut self, round: Option<u64>) -> Self {
        self.scenario.byzantine.active_until = round;
        self
    }

    /// Validates and returns the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidScenario`] if any parameter is invalid.
    pub fn build(self) -> Result<AdversarialScenario, InvalidScenario> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_benign_and_valid() {
        let s = AdversarialScenario::benign();
        assert!(s.is_benign());
        s.validate().unwrap();
    }

    #[test]
    fn partition_window_is_inclusive_exclusive() {
        let mut sched = PartitionSchedule::new();
        sched.cut([2, 5], 3, Some(7));
        assert!(!sched.link_cut(2, 2));
        assert!(sched.link_cut(2, 3));
        assert!(sched.link_cut(5, 6));
        assert!(!sched.link_cut(5, 7));
        assert!(!sched.link_cut(4, 5), "uncut link never severed");
    }

    #[test]
    fn unhealed_partition_is_permanent() {
        let mut sched = PartitionSchedule::new();
        sched.cut([0], 1, None);
        assert!(!sched.link_cut(0, 0));
        assert!(sched.link_cut(0, 1_000_000));
    }

    #[test]
    fn overlapping_cuts_union() {
        let mut sched = PartitionSchedule::new();
        sched.cut([1], 0, Some(4)).cut([1], 8, Some(10));
        assert!(sched.link_cut(1, 2));
        assert!(!sched.link_cut(1, 5));
        assert!(sched.link_cut(1, 9));
    }

    #[test]
    fn heal_before_start_is_rejected() {
        let mut sched = PartitionSchedule::new();
        sched.cut([1], 5, Some(5));
        let err = sched.validate().unwrap_err();
        assert_eq!(err.parameter, "partitions");
        assert!(err.to_string().contains("heals"));
    }

    #[test]
    fn empty_cut_is_rejected() {
        let mut sched = PartitionSchedule::new();
        sched.cut([], 0, None);
        assert!(sched.validate().is_err());
    }

    #[test]
    fn chaos_activity_and_validation() {
        assert!(!LinkChaos::none().is_active());
        let chaos = LinkChaos {
            reorder_probability: 0.0,
            delay_probability: 0.3,
        };
        assert!(chaos.is_active());
        chaos.validate().unwrap();
        let bad = LinkChaos {
            reorder_probability: 1.5,
            delay_probability: 0.0,
        };
        assert_eq!(bad.validate().unwrap_err().parameter, "reorder_probability");
        let nan = LinkChaos {
            reorder_probability: 0.0,
            delay_probability: f64::NAN,
        };
        assert_eq!(nan.validate().unwrap_err().parameter, "delay_probability");
    }

    #[test]
    fn byzantine_arming_respects_window_and_membership() {
        let byz = ByzantineSet {
            tiles: [3usize, 9].into_iter().collect(),
            mode: ByzantineMode::Replay,
            activation_probability: 1.0,
            active_until: Some(5),
        };
        assert!(byz.is_active());
        assert!(byz.armed(3, 0));
        assert!(byz.armed(9, 4));
        assert!(!byz.armed(9, 5), "window end is exclusive");
        assert!(!byz.armed(4, 0), "uncompromised tile never armed");
        let unbounded = ByzantineSet {
            active_until: None,
            ..byz
        };
        assert!(unbounded.armed(3, u64::MAX));
    }

    #[test]
    fn byzantine_without_tiles_or_probability_is_inert() {
        let mut byz = ByzantineSet::none();
        assert!(!byz.is_active());
        byz.tiles.insert(1);
        assert!(!byz.is_active(), "p = 0 never activates");
        byz.activation_probability = 0.5;
        assert!(byz.is_active());
    }

    #[test]
    fn builder_composes_all_mechanisms() {
        let s = AdversarialScenario::builder()
            .cut_links([3, 7], 2, Some(6))
            .kill_link(11, 4)
            .kill_tile(2, 9)
            .reorder_probability(0.2)
            .delay_probability(0.1)
            .byzantine_tile(5)
            .byzantine_mode(ByzantineMode::Forge)
            .byzantine_activation(0.5)
            .byzantine_until(Some(10))
            .build()
            .unwrap();
        assert!(!s.is_benign());
        assert!(s.partitions.link_cut(7, 5));
        assert!(s.permanent.link_dead(11, 4));
        assert!(s.permanent.tile_dead(2, 9));
        assert!(s.chaos.is_active());
        assert!(s.byzantine.armed(5, 9));
        assert!(!s.byzantine.armed(5, 10));
    }

    #[test]
    fn builder_rejects_invalid_probability() {
        let err = AdversarialScenario::builder()
            .byzantine_tile(0)
            .byzantine_activation(-0.5)
            .build()
            .unwrap_err();
        assert_eq!(err.parameter, "activation_probability");
        assert!(err.to_string().contains("activation_probability"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn severed_iff_inside_window(
                link in 0usize..16,
                from in 0u64..20,
                span in 1u64..20,
                round in 0u64..60,
            ) {
                let mut sched = PartitionSchedule::new();
                sched.cut([link], from, Some(from + span));
                let expect = round >= from && round < from + span;
                prop_assert_eq!(sched.link_cut(link, round), expect);
            }

            #[test]
            fn in_range_chaos_validates(
                pr in 0.0f64..=1.0,
                pd in 0.0f64..=1.0,
            ) {
                let chaos = LinkChaos { reorder_probability: pr, delay_probability: pd };
                prop_assert!(chaos.validate().is_ok());
                prop_assert_eq!(chaos.is_active(), pr > 0.0 || pd > 0.0);
            }

            #[test]
            fn benign_iff_everything_inert(
                cut in any::<bool>(),
                perm in any::<bool>(),
                chaos in any::<bool>(),
                byz in any::<bool>(),
            ) {
                let mut builder = AdversarialScenario::builder();
                if cut { builder = builder.cut_links([0], 0, None); }
                if perm { builder = builder.kill_tile(0, 0); }
                if chaos { builder = builder.delay_probability(0.5); }
                if byz {
                    builder = builder.byzantine_tile(0).byzantine_activation(0.5);
                }
                let scenario = builder.build().unwrap();
                prop_assert_eq!(scenario.is_benign(), !(cut || perm || chaos || byz));
            }
        }
    }
}
