//! Small statistics and table-formatting helpers shared by the figures.

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population standard deviation; `None` for fewer than two values.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Mean and standard deviation together (std 0 for singletons).
pub fn mean_std(values: &[f64]) -> Option<(f64, f64)> {
    let m = mean(values)?;
    Some((m, std_dev(values).unwrap_or(0.0)))
}

/// Prints a header row followed by a separator, for the table output the
/// harness emits.
pub fn print_table_header(title: &str, columns: &[&str]) {
    println!();
    println!("== {title} ==");
    println!("{}", columns.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(mean_std(&[]), None);
    }

    #[test]
    fn mean_and_std_of_known_data() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let (m, s) = mean_std(&data).unwrap();
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_has_zero_std() {
        assert_eq!(mean_std(&[3.0]), Some((3.0, 0.0)));
        assert_eq!(std_dev(&[3.0]), None);
    }
}
