//! Chapter 2 / error-model benches: CRC codec throughput (bit-serial vs
//! table-driven ablation) and error-vector scrambling.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_crc::{BitwiseCrc, CrcAlgorithm, CrcParams, PacketCodec, TableCrc};
use noc_faults::ErrorModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xA5u8; 1024];
    let mut group = c.benchmark_group("crc throughput");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(50);

    let bitwise = BitwiseCrc::new(CrcParams::CRC16_CCITT);
    group.bench_function("bitwise crc16 1KiB", |b| {
        b.iter(|| bitwise.checksum(black_box(&data)))
    });
    let table = TableCrc::new(CrcParams::CRC16_CCITT);
    group.bench_function("table crc16 1KiB", |b| {
        b.iter(|| table.checksum(black_box(&data)))
    });
    let codec = PacketCodec::new(CrcParams::CRC16_CCITT);
    let framed = codec.encode(&data);
    group.bench_function("verify 1KiB frame", |b| {
        b.iter(|| codec.verify(black_box(&framed)))
    });
    group.finish();

    let mut group = c.benchmark_group("error models");
    group.sample_size(50);
    let mut rng = StdRng::seed_from_u64(1);
    for model in [ErrorModel::RandomErrorVector, ErrorModel::RandomBitError] {
        group.bench_function(format!("scramble 64B {model:?}"), |b| {
            b.iter(|| {
                let mut payload = vec![0u8; 64];
                model.scramble(&mut rng, &mut payload, 0.5);
                black_box(payload)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crc);
criterion_main!(benches);
