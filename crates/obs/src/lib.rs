//! `noc-obs` — the **wall-clock plane** of the workspace's two-plane
//! observability contract (DESIGN.md §13).
//!
//! The simulation proper lives entirely on the *deterministic plane*:
//! `SimEvent` streams, `SimulationReport`s, and the golden digests
//! derived from them are pure functions of `(topology, config, fault
//! model, adversary, seed)` and are byte-identical on every machine,
//! thread count, and shard count. Wall-clock time must never leak into
//! that plane — a report that mentioned seconds would make digests
//! machine-dependent and kill the replay/caching story.
//!
//! Everything that *does* read the clock lives here instead:
//!
//! * [`Metrics`] — a registry of named, labelled [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s, snapshot-able to
//!   hand-rolled JSON ([`MetricsSnapshot::to_json`]) and Prometheus
//!   text exposition ([`MetricsSnapshot::to_prometheus`]);
//! * [`Stopwatch`] — the one sanctioned wrapper around
//!   `std::time::Instant`. The `noc-lint` `nondeterministic-time` rule
//!   flags raw `Instant::now()`/`SystemTime::now()` everywhere outside
//!   this crate, so the two-plane split is enforced statically, not by
//!   convention.
//!
//! Handles returned by the registry are cheap `Arc`-backed clones whose
//! record paths are single atomic operations — safe to call from scoped
//! worker threads without locks. The registry lock is only taken at
//! registration and snapshot time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod snapshot;
mod time;

pub use registry::{Counter, Gauge, Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use time::Stopwatch;
