//! Shared scaffolding for the engine equivalence suites: comparable
//! report observables plus proptest strategies over topologies, fault
//! models, crash schedules, and adversarial scenarios.
//!
//! Used by both `engine_equivalence.rs` (optimized engine vs the naive
//! reference) and `shard_equivalence.rs` (shard-count independence), so
//! the two suites sample from exactly the same scenario space.

use noc_fabric::Topology;
use noc_faults::{
    AdversarialScenario, ByzantineMode, CrashSchedule, ErrorModel, FaultModel, OverflowMode,
};
use proptest::prelude::*;
use stochastic_noc::SimulationReport;

/// Everything observable about a finished run, in comparable form.
#[derive(Debug, PartialEq, Eq)]
pub struct Observables {
    pub rounds_executed: u64,
    pub completed: bool,
    pub packets_sent: u64,
    pub bits_sent: u64,
    pub upsets_detected: u64,
    pub upsets_undetected: u64,
    pub overflow_drops: u64,
    pub crash_drops: u64,
    pub clock_slips: u64,
    pub ttl_expirations: u64,
    pub partition_drops: u64,
    pub byzantine_forges: u64,
    pub byzantine_replays: u64,
    pub adversarial_delays: u64,
    pub adversarial_reorders: u64,
    /// `(id, source, destination, injected, delivered)` sorted by id.
    pub records: Vec<(u64, usize, usize, u64, Option<u64>)>,
}

pub fn observe(report: &SimulationReport) -> Observables {
    let mut records: Vec<_> = report
        .records()
        .map(|r| {
            (
                r.id.0,
                r.source.index(),
                r.destination.index(),
                r.injected_round,
                r.delivered_round,
            )
        })
        .collect();
    records.sort_unstable();
    Observables {
        rounds_executed: report.rounds_executed,
        completed: report.completed,
        packets_sent: report.packets_sent,
        bits_sent: report.bits_sent.bits(),
        upsets_detected: report.upsets_detected,
        upsets_undetected: report.upsets_undetected,
        overflow_drops: report.overflow_drops,
        crash_drops: report.crash_drops,
        clock_slips: report.clock_slips,
        ttl_expirations: report.ttl_expirations,
        partition_drops: report.partition_drops,
        byzantine_forges: report.byzantine_forges,
        byzantine_replays: report.byzantine_replays,
        adversarial_delays: report.adversarial_delays,
        adversarial_reorders: report.adversarial_reorders,
        records,
    }
}

pub fn topology_strategy() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..6, 2usize..6).prop_map(|(w, h)| Topology::grid(w, h)),
        (3usize..6, 3usize..6).prop_map(|(w, h)| Topology::torus(w, h)),
        (4usize..12).prop_map(Topology::fully_connected),
    ]
}

pub fn error_model_strategy() -> impl Strategy<Value = ErrorModel> {
    prop_oneof![
        Just(ErrorModel::RandomErrorVector),
        Just(ErrorModel::RandomBitError),
    ]
}

pub fn overflow_mode_strategy() -> impl Strategy<Value = OverflowMode> {
    prop_oneof![
        Just(OverflowMode::Probabilistic),
        (2usize..6).prop_map(|capacity| OverflowMode::Structural { capacity }),
    ]
}

pub fn fault_model_strategy() -> impl Strategy<Value = FaultModel> {
    (
        0.0f64..0.35,
        0.0f64..0.25,
        0.0f64..0.4,
        0.0f64..0.15,
        0.0f64..0.15,
        error_model_strategy(),
        overflow_mode_strategy(),
    )
        .prop_map(
            |(p_upset, p_overflow, sigma, p_tiles, p_links, error_model, overflow_mode)| {
                FaultModel::builder()
                    .p_upset(p_upset)
                    .p_overflow(p_overflow)
                    .sigma_synch(sigma)
                    .p_tiles(p_tiles)
                    .p_links(p_links)
                    .error_model(error_model)
                    .overflow_mode(overflow_mode)
                    .build()
                    .expect("strategy generates valid models")
            },
        )
}

/// Raw `(index, round)` kill events, clamped to the topology inside the
/// test since the node/link counts are topology-dependent.
pub type KillEvents = Vec<(usize, u64)>;

/// `(tile_kills, link_kills)` as raw indices.
pub fn crash_strategy() -> impl Strategy<Value = (KillEvents, KillEvents)> {
    (
        proptest::collection::vec((0usize..64, 0u64..10), 0..3),
        proptest::collection::vec((0usize..128, 0u64..10), 0..3),
    )
}

/// Builds a concrete [`CrashSchedule`] from raw kill events.
pub fn build_schedule(
    tile_kills: &[(usize, u64)],
    link_kills: &[(usize, u64)],
    n: usize,
    m: usize,
) -> CrashSchedule {
    let mut schedule = CrashSchedule::new();
    for &(tile, round) in tile_kills {
        schedule.kill_tile(tile % n, round);
    }
    for &(link, round) in link_kills {
        schedule.kill_link(link % m, round);
    }
    schedule
}

/// Raw, topology-independent adversarial scenario parameters. Link and
/// tile indices are clamped to the sampled topology inside the test.
#[derive(Debug, Clone)]
pub struct RawAdversary {
    pub cut_links: Vec<usize>,
    pub cut_from: u64,
    pub cut_heal_delta: Option<u64>,
    pub permanent_tile: Option<(usize, u64)>,
    pub permanent_link: Option<(usize, u64)>,
    pub delay_p: f64,
    pub reorder_p: f64,
    pub byzantine: Option<(usize, bool, u64)>,
    pub byzantine_until: Option<u64>,
}

pub fn adversary_strategy() -> impl Strategy<Value = RawAdversary> {
    // The vendored proptest has no `option::of`; gate each optional
    // component on a sampled bool instead.
    (
        (
            proptest::collection::vec(0usize..128, 0..4),
            0u64..8,
            (any::<bool>(), 1u64..12),
        ),
        (any::<bool>(), 0usize..64, 0u64..10),
        (any::<bool>(), 0usize..128, 0u64..10),
        (0.0f64..0.3, 0.0f64..0.3),
        (any::<bool>(), 0usize..64, any::<bool>(), 1u64..64),
        (any::<bool>(), 1u64..20),
    )
        .prop_map(
            |(
                (cut_links, cut_from, (heal_some, heal_delta)),
                (tile_some, tile, tile_round),
                (link_some, link, link_round),
                (delay_p, reorder_p),
                (byz_some, byz_tile, byz_forge, byz_activation),
                (until_some, until),
            )| RawAdversary {
                cut_links,
                cut_from,
                cut_heal_delta: heal_some.then_some(heal_delta),
                permanent_tile: tile_some.then_some((tile, tile_round)),
                permanent_link: link_some.then_some((link, link_round)),
                delay_p,
                reorder_p,
                byzantine: byz_some.then_some((byz_tile, byz_forge, byz_activation)),
                byzantine_until: until_some.then_some(until),
            },
        )
}

/// Realizes a [`RawAdversary`] against concrete node/link counts.
pub fn build_adversary(raw: &RawAdversary, n: usize, m: usize) -> AdversarialScenario {
    let mut builder = AdversarialScenario::builder()
        .delay_probability(raw.delay_p)
        .reorder_probability(raw.reorder_p);
    if !raw.cut_links.is_empty() {
        let links: Vec<usize> = raw.cut_links.iter().map(|&l| l % m).collect();
        let heal = raw.cut_heal_delta.map(|d| raw.cut_from + d);
        builder = builder.cut_links(links, raw.cut_from, heal);
    }
    if let Some((tile, round)) = raw.permanent_tile {
        builder = builder.kill_tile(tile % n, round);
    }
    if let Some((link, round)) = raw.permanent_link {
        builder = builder.kill_link(link % m, round);
    }
    if let Some((tile, forge, activation)) = raw.byzantine {
        builder = builder
            .byzantine_tile(tile % n)
            .byzantine_mode(if forge {
                ByzantineMode::Forge
            } else {
                ByzantineMode::Replay
            })
            .byzantine_activation(activation as f64 / 64.0)
            .byzantine_until(raw.byzantine_until);
    }
    builder.build().expect("strategy generates valid scenarios")
}
