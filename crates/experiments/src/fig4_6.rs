//! **Figure 4-6** — stochastic NoC versus a shared bus: latency (µs) and
//! energy per bit, three runs plus the average.
//!
//! Setup from §4.1.4: 16 DSP modules, 0.25 µm technology; the bus spans
//! the grid side (43 MHz, 21.6e-10 J/bit), a NoC link spans one tile
//! (381 MHz, 2.4e-10 J/bit). Both fabrics carry the same random
//! all-at-once traffic pattern. The NoC side runs with the spread
//! termination the paper suggests in §3.2.2 (delivered messages stop
//! being retransmitted), which is what makes the paper's "energy within
//! 5%" claim possible at all. Expected shapes: the NoC's latency is an
//! order of magnitude better; its energy is the same order as the bus
//! (our measured overhead is larger than the paper's +5%, see
//! EXPERIMENTS.md); the energy×delay product clearly favours the NoC.

use noc_bus::{BusConfig, BusSimulation, Transfer};
use noc_energy::{round_duration, Bits, Hertz, TechnologyLibrary};
use noc_fabric::{Grid2d, NodeId, WireCodec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stochastic_noc::{SimulationBuilder, StochasticConfig};

use crate::{Scale, TrialRunner};

/// Message size used by the comparison (payload bytes).
const PAYLOAD_BYTES: usize = 64;
/// Messages per run (one per module).
const MESSAGES: usize = 16;

/// Result of one fabric on one run.
#[derive(Debug, Clone, Copy)]
pub struct FabricMetrics {
    /// Mean end-to-end message latency, seconds.
    pub latency_seconds: f64,
    /// Energy per *useful* (payload+header) bit delivered, joules.
    pub energy_per_bit: f64,
    /// Energy×delay figure, joule-seconds per bit.
    pub energy_delay_per_bit: f64,
}

/// One row of Figure 4-6: a run (or the average row).
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Run label ("run 1".."run N" or "avg").
    pub label: String,
    /// Stochastic NoC metrics.
    pub noc: FabricMetrics,
    /// Shared-bus metrics.
    pub bus: FabricMetrics,
}

/// Random all-at-once traffic: every module sends one message to a
/// distinct random peer.
fn traffic(seed: u64) -> Vec<(usize, usize)> {
    // noc-lint: allow(rng-draw-site, reason = "self-contained traffic-pattern generator from a TrialRunner-derived seed; engine-free energy figure")
    let mut rng = StdRng::seed_from_u64(seed);
    (0..MESSAGES)
        .map(|src| {
            // noc-lint: allow(rng-draw-site, reason = "self-contained traffic-pattern generator from a TrialRunner-derived seed; engine-free energy figure")
            let mut dst = rng.gen_range(0..MESSAGES);
            while dst == src {
                // noc-lint: allow(rng-draw-site, reason = "self-contained traffic-pattern generator from a TrialRunner-derived seed; engine-free energy figure")
                dst = rng.gen_range(0..MESSAGES);
            }
            (src, dst)
        })
        .collect()
}

fn run_noc(pairs: &[(usize, usize)], seed: u64) -> FabricMetrics {
    let codec = WireCodec::default();
    let frame_bits = codec.frame_bits(PAYLOAD_BYTES);
    let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
        .config(
            StochasticConfig::new(0.5, 8)
                .expect("valid")
                .with_max_rounds(200)
                .with_termination(true),
        )
        .technology(TechnologyLibrary::NOC_LINK_0_25UM)
        .shards(crate::runner::default_shards())
        .seed(seed)
        .build();
    let ids: Vec<_> = pairs
        .iter()
        .map(|&(s, d)| sim.inject(NodeId(s), NodeId(d), vec![0xA5; PAYLOAD_BYTES]))
        .collect();
    let report = sim.run_to_report();

    // Round duration from Equation 2 with the measured per-link load.
    let link_count = (2 * (4 * 3 + 4 * 3)) as f64;
    let packets_per_link_round =
        report.packets_sent as f64 / (link_count * report.rounds_executed.max(1) as f64);
    let t_r = round_duration(
        packets_per_link_round.max(1.0),
        frame_bits,
        Hertz::from_mhz(381.0),
    );
    let latencies: Vec<f64> = ids
        .iter()
        .filter_map(|&id| report.latency(id))
        .map(|rounds| rounds as f64 * t_r.seconds())
        .collect();
    let latency = if latencies.is_empty() {
        report.rounds_executed as f64 * t_r.seconds()
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let useful_bits = (MESSAGES as u64) * frame_bits.bits();
    let energy_per_bit = report.total_energy().joules() / useful_bits as f64;
    FabricMetrics {
        latency_seconds: latency,
        energy_per_bit,
        energy_delay_per_bit: energy_per_bit * latency,
    }
}

fn run_bus(pairs: &[(usize, usize)]) -> FabricMetrics {
    let mut bus = BusSimulation::new(MESSAGES, BusConfig::default());
    for &(s, d) in pairs {
        bus.submit(Transfer::new(s, d, PAYLOAD_BYTES, 0.0));
    }
    let report = bus.run();
    let latency = report
        .average_latency()
        .expect("transfers completed")
        .seconds();
    let useful_bits = Bits::from_bytes((MESSAGES * PAYLOAD_BYTES) as u64).bits();
    let energy_per_bit = report.total_energy().joules() / useful_bits as f64;
    FabricMetrics {
        latency_seconds: latency,
        energy_per_bit,
        energy_delay_per_bit: energy_per_bit * latency,
    }
}

/// Runs the Figure 4-6 comparison: N runs plus the average row.
pub fn run(scale: Scale) -> Vec<ComparisonRow> {
    let runs = match scale {
        Scale::Quick => 3,
        Scale::Full => 5,
    };
    let mut rows: Vec<ComparisonRow> =
        TrialRunner::for_figure("fig4-6", runs).run_indexed(|index, seed| {
            let pairs = traffic(seed);
            ComparisonRow {
                label: format!("run {}", index + 1),
                noc: run_noc(&pairs, seed),
                bus: run_bus(&pairs),
            }
        });
    let avg = |f: fn(&FabricMetrics) -> f64, pick: fn(&ComparisonRow) -> &FabricMetrics| {
        rows.iter().map(|r| f(pick(r))).sum::<f64>() / rows.len() as f64
    };
    let noc = FabricMetrics {
        latency_seconds: avg(|m| m.latency_seconds, |r| &r.noc),
        energy_per_bit: avg(|m| m.energy_per_bit, |r| &r.noc),
        energy_delay_per_bit: avg(|m| m.energy_delay_per_bit, |r| &r.noc),
    };
    let bus = FabricMetrics {
        latency_seconds: avg(|m| m.latency_seconds, |r| &r.bus),
        energy_per_bit: avg(|m| m.energy_per_bit, |r| &r.bus),
        energy_delay_per_bit: avg(|m| m.energy_delay_per_bit, |r| &r.bus),
    };
    rows.push(ComparisonRow {
        label: "avg".to_string(),
        noc,
        bus,
    });
    rows
}

/// Prints both panels of Figure 4-6.
pub fn print(rows: &[ComparisonRow]) {
    crate::stats::print_table_header(
        "Figure 4-6: stochastic NoC vs shared bus (16 DSP modules, 0.25um)",
        &[
            "run",
            "NoC latency [us]",
            "bus latency [us]",
            "NoC [J/bit]",
            "bus [J/bit]",
            "NoC ExD [J*s/bit]",
            "bus ExD [J*s/bit]",
        ],
    );
    for r in rows {
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3e}\t{:.3e}\t{:.3e}\t{:.3e}",
            r.label,
            r.noc.latency_seconds * 1e6,
            r.bus.latency_seconds * 1e6,
            r.noc.energy_per_bit,
            r.bus.energy_per_bit,
            r.noc.energy_delay_per_bit,
            r.bus.energy_delay_per_bit,
        );
    }
    if let Some(avg) = rows.last() {
        println!(
            "latency ratio (bus/NoC): {:.1}x   energy ratio (NoC/bus): {:.2}x   ExD ratio (bus/NoC): {:.1}x",
            avg.bus.latency_seconds / avg.noc.latency_seconds,
            avg.noc.energy_per_bit / avg.bus.energy_per_bit,
            avg.bus.energy_delay_per_bit / avg.noc.energy_delay_per_bit,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noc_latency_is_an_order_of_magnitude_better() {
        let rows = run(Scale::Quick);
        let avg = rows.last().unwrap();
        let ratio = avg.bus.latency_seconds / avg.noc.latency_seconds;
        assert!(
            ratio > 4.0,
            "paper reports ~11x; reproduction must stay >4x, got {ratio:.1}x"
        );
    }

    #[test]
    fn energy_is_the_same_order_of_magnitude() {
        let rows = run(Scale::Quick);
        let avg = rows.last().unwrap();
        let ratio = avg.noc.energy_per_bit / avg.bus.energy_per_bit;
        assert!(
            (0.5..30.0).contains(&ratio),
            "NoC/bus energy ratio {ratio:.2} left the same order-of-magnitude band"
        );
    }

    #[test]
    fn energy_delay_favours_the_noc() {
        let rows = run(Scale::Quick);
        let avg = rows.last().unwrap();
        assert!(
            avg.noc.energy_delay_per_bit < avg.bus.energy_delay_per_bit,
            "NoC ExD {:.3e} must beat bus {:.3e}",
            avg.noc.energy_delay_per_bit,
            avg.bus.energy_delay_per_bit
        );
    }

    #[test]
    fn traffic_has_no_self_sends() {
        for seed in 0..5 {
            assert!(traffic(seed).iter().all(|&(s, d)| s != d));
        }
    }
}
