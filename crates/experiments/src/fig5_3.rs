//! **Figure 5-3** — on-chip diversity: latency and message transmissions
//! of the flat NoC, the hierarchical NoC, and bus-connected NoCs under
//! identical beamforming traffic.
//!
//! Expected shapes from the paper: the hierarchical NoC has the lowest
//! number of message transmissions (lowest power); the flat NoC has a
//! slightly better latency; the bus-connected hybrid is less efficient
//! than both.

use noc_diversity::{
    compare_architectures, ArchitectureKind, ArchitectureResult, ComparisonParams,
};

use crate::{Scale, TrialRunner};

/// Aggregated result per architecture, with the benign baseline and a
/// hostile column (same workload under the adversarial template of
/// [`ComparisonParams::hostile`]).
#[derive(Debug, Clone)]
pub struct DiversityRow {
    /// Which fabric.
    pub kind: ArchitectureKind,
    /// Mean latency in rounds.
    pub latency_rounds: f64,
    /// Mean message transmissions.
    pub transmissions: f64,
    /// Fraction of runs completed.
    pub completion_ratio: f64,
    /// Mean latency under the hostile scenario.
    pub hostile_latency_rounds: f64,
    /// Mean message transmissions under the hostile scenario.
    pub hostile_transmissions: f64,
    /// Fraction of hostile runs completed.
    pub hostile_completion_ratio: f64,
}

/// One sweep (benign or hostile) aggregated per architecture kind.
fn sweep(label: &'static str, base: &ComparisonParams, reps: u64) -> Vec<Vec<ArchitectureResult>> {
    let runs = TrialRunner::for_figure(label, reps).run(|seed| {
        let params = ComparisonParams {
            seed,
            shards: crate::runner::default_shards(),
            ..base.clone()
        };
        compare_architectures(&params)
    });
    let mut acc: Vec<Vec<ArchitectureResult>> = vec![Vec::new(), Vec::new(), Vec::new()];
    let kinds = [
        ArchitectureKind::Flat,
        ArchitectureKind::Hierarchical,
        ArchitectureKind::BusConnected,
    ];
    for results in runs {
        for result in results {
            let slot = kinds
                .iter()
                .position(|k| *k == result.kind)
                .expect("known kind");
            acc[slot].push(result);
        }
    }
    acc
}

/// Runs the Figure 5-3 comparison over several seeds, benign and
/// hostile.
pub fn run(scale: Scale) -> Vec<DiversityRow> {
    let base = match scale {
        Scale::Quick => ComparisonParams::quick(),
        Scale::Full => ComparisonParams::paper_scale(),
    };
    let reps = scale.repetitions();
    let benign = sweep("fig5-3", &base, reps);
    let hostile = sweep("fig5-3-hostile", &base.clone().hostile(), reps);
    let kinds = [
        ArchitectureKind::Flat,
        ArchitectureKind::Hierarchical,
        ArchitectureKind::BusConnected,
    ];
    kinds
        .iter()
        .zip(benign)
        .zip(hostile)
        .map(|((&kind, results), hostile_results)| {
            let n = results.len() as f64;
            let h = hostile_results.len() as f64;
            DiversityRow {
                kind,
                latency_rounds: results.iter().map(|r| r.latency_rounds as f64).sum::<f64>() / n,
                transmissions: results.iter().map(|r| r.transmissions as f64).sum::<f64>() / n,
                completion_ratio: results.iter().filter(|r| r.completed).count() as f64 / n,
                hostile_latency_rounds: hostile_results
                    .iter()
                    .map(|r| r.latency_rounds as f64)
                    .sum::<f64>()
                    / h,
                hostile_transmissions: hostile_results
                    .iter()
                    .map(|r| r.transmissions as f64)
                    .sum::<f64>()
                    / h,
                hostile_completion_ratio: hostile_results.iter().filter(|r| r.completed).count()
                    as f64
                    / h,
            }
        })
        .collect()
}

/// Prints both bar charts of Figure 5-3, plus the hostile column.
pub fn print(rows: &[DiversityRow]) {
    crate::stats::print_table_header(
        "Figure 5-3: on-chip diversity architecture comparison (beamforming)",
        &[
            "architecture",
            "latency [rounds]",
            "message transmissions",
            "completion",
            "hostile latency",
            "hostile transmissions",
            "hostile completion",
        ],
    );
    for r in rows {
        println!(
            "{}\t{:.1}\t{:.0}\t{:.2}\t{:.1}\t{:.0}\t{:.2}",
            r.kind.name(),
            r.latency_rounds,
            r.transmissions,
            r.completion_ratio,
            r.hostile_latency_rounds,
            r.hostile_transmissions,
            r.hostile_completion_ratio,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by_kind(rows: &[DiversityRow], kind: ArchitectureKind) -> &DiversityRow {
        rows.iter().find(|r| r.kind == kind).expect("present")
    }

    #[test]
    fn hierarchical_transmits_least() {
        let rows = run(Scale::Quick);
        let hier = by_kind(&rows, ArchitectureKind::Hierarchical);
        let flat = by_kind(&rows, ArchitectureKind::Flat);
        assert!(
            hier.transmissions < flat.transmissions,
            "hierarchical {} vs flat {}",
            hier.transmissions,
            flat.transmissions
        );
    }

    #[test]
    fn flat_has_best_latency_and_bus_is_worst() {
        let rows = run(Scale::Quick);
        let flat = by_kind(&rows, ArchitectureKind::Flat).latency_rounds;
        let hier = by_kind(&rows, ArchitectureKind::Hierarchical).latency_rounds;
        let bus = by_kind(&rows, ArchitectureKind::BusConnected).latency_rounds;
        assert!(flat <= hier, "flat {flat} vs hierarchical {hier}");
        assert!(bus >= hier, "bus {bus} vs hierarchical {hier}");
    }

    #[test]
    fn hostile_column_is_populated() {
        let rows = run(Scale::Quick);
        for r in &rows {
            assert!(
                r.hostile_transmissions > 0.0,
                "{:?} hostile sweep moved no traffic",
                r.kind
            );
            assert!(r.hostile_latency_rounds > 0.0);
            assert!((0.0..=1.0).contains(&r.hostile_completion_ratio));
        }
    }
}
