//! Designer-facing tuning of the protocol knobs.
//!
//! The paper's headline flexibility claim is that `p` and the TTL "can
//! be used to tune the trade-off between performance and energy
//! consumption". This module turns that into an API: Monte-Carlo
//! estimation of the delivery probability and cost of a `(p, ttl)`
//! configuration on a given topology, and a search for the cheapest
//! configuration meeting a reliability target.

use noc_fabric::{NodeId, Topology};

use crate::config::StochasticConfig;
use crate::engine::SimulationBuilder;
use crate::seed::derive_trial_seed;

/// Estimated behaviour of one `(p, ttl)` point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningPoint {
    /// Forwarding probability evaluated.
    pub p: f64,
    /// TTL evaluated.
    pub ttl: u8,
    /// Fraction of trials in which the probe message was delivered.
    pub delivery_probability: f64,
    /// Mean delivery latency in rounds (over delivered trials).
    pub mean_latency: Option<f64>,
    /// Mean packets transmitted per trial (the energy proxy of Eq. 3).
    pub mean_packets: f64,
}

/// Monte-Carlo estimate of delivery probability, latency and traffic
/// for a single `source → destination` message under `(p, ttl)`.
///
/// # Panics
///
/// Panics if `trials` is zero, the endpoints are outside the topology,
/// or the configuration is invalid.
///
/// # Examples
///
/// ```
/// use noc_fabric::{NodeId, Topology};
/// use stochastic_noc::tuning::evaluate;
///
/// let grid = Topology::grid(4, 4);
/// let point = evaluate(&grid, NodeId(5), NodeId(11), 0.5, 12, 20, 7);
/// assert!(point.delivery_probability > 0.8);
/// ```
pub fn evaluate(
    topology: &Topology,
    source: NodeId,
    destination: NodeId,
    p: f64,
    ttl: u8,
    trials: u32,
    seed: u64,
) -> TuningPoint {
    assert!(trials > 0, "at least one trial required");
    let config = StochasticConfig::new(p, ttl)
        .unwrap_or_else(|e| panic!("invalid tuning point: {e}"))
        .with_max_rounds(ttl as u64 + 4);
    let mut delivered = 0u32;
    let mut latency_sum = 0u64;
    let mut packets_sum = 0u64;
    for trial in 0..trials {
        let mut sim = SimulationBuilder::new(topology.clone())
            .config(config)
            // SplitMix64 derivation: adjacent trial indices must produce
            // statistically independent RNG streams, which a consecutive
            // affine sequence of StdRng seeds does not guarantee.
            .seed(derive_trial_seed(seed, trial as u64))
            .build();
        let id = sim.inject(source, destination, vec![0u8; 8]);
        let report = sim.run();
        if let Some(l) = report.latency(id) {
            delivered += 1;
            latency_sum += l;
        }
        packets_sum += report.packets_sent;
    }
    TuningPoint {
        p,
        ttl,
        delivery_probability: delivered as f64 / trials as f64,
        mean_latency: if delivered > 0 {
            Some(latency_sum as f64 / delivered as f64)
        } else {
            None
        },
        mean_packets: packets_sum as f64 / trials as f64,
    }
}

/// Searches the `(p, ttl)` grid for the cheapest configuration (fewest
/// packets, the Equation 3 energy proxy) whose estimated delivery
/// probability meets `target_reliability`, evaluating the worst-case
/// node pair (a diameter-separated source/destination).
///
/// Returns `None` if no candidate on the grid meets the target.
///
/// # Panics
///
/// Panics if the topology is disconnected, the target is not a
/// probability, or either candidate list is empty.
///
/// # Examples
///
/// ```
/// use noc_fabric::Topology;
/// use stochastic_noc::tuning::recommend;
///
/// let grid = Topology::grid(4, 4);
/// let choice = recommend(&grid, 0.9, &[0.5, 0.75, 1.0], &[6, 10, 14], 12, 3)
///     .expect("some configuration reaches 90%");
/// assert!(choice.delivery_probability >= 0.9);
/// ```
pub fn recommend(
    topology: &Topology,
    target_reliability: f64,
    p_candidates: &[f64],
    ttl_candidates: &[u8],
    trials: u32,
    seed: u64,
) -> Option<TuningPoint> {
    assert!(
        (0.0..=1.0).contains(&target_reliability),
        "target must be a probability"
    );
    assert!(
        !p_candidates.is_empty() && !ttl_candidates.is_empty(),
        "candidate lists cannot be empty"
    );
    let (source, destination) = worst_case_pair(topology);
    let mut best: Option<TuningPoint> = None;
    for &p in p_candidates {
        for &ttl in ttl_candidates {
            let point = evaluate(topology, source, destination, p, ttl, trials, seed);
            if point.delivery_probability + 1e-12 >= target_reliability {
                let better = match &best {
                    None => true,
                    Some(b) => point.mean_packets < b.mean_packets,
                };
                if better {
                    best = Some(point);
                }
            }
        }
    }
    best
}

/// A diameter-separated node pair (the hardest unicast in the fabric).
///
/// # Panics
///
/// Panics if the topology is disconnected.
pub fn worst_case_pair(topology: &Topology) -> (NodeId, NodeId) {
    let mut best = (NodeId(0), NodeId(0), 0usize);
    for a in topology.nodes() {
        for b in topology.nodes() {
            let d = topology
                .hop_distance(a, b)
                .expect("tuning requires a connected topology");
            if d > best.2 {
                best = (a, b, d);
            }
        }
    }
    (best.0, best.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_case_pair_spans_the_diameter() {
        let grid = Topology::grid(4, 4);
        let (a, b) = worst_case_pair(&grid);
        assert_eq!(grid.hop_distance(a, b), Some(6));
    }

    #[test]
    fn flooding_with_ample_ttl_is_fully_reliable() {
        let grid = Topology::grid(4, 4);
        let point = evaluate(&grid, NodeId(0), NodeId(15), 1.0, 8, 10, 1);
        assert_eq!(point.delivery_probability, 1.0);
        assert_eq!(point.mean_latency, Some(6.0));
    }

    #[test]
    fn ttl_below_distance_never_delivers() {
        let grid = Topology::grid(4, 4);
        // 6 hops needed; ttl 4 cannot reach even under flooding.
        let point = evaluate(&grid, NodeId(0), NodeId(15), 1.0, 4, 10, 2);
        assert_eq!(point.delivery_probability, 0.0);
        assert_eq!(point.mean_latency, None);
    }

    #[test]
    fn higher_p_is_more_reliable_at_fixed_ttl() {
        let grid = Topology::grid(4, 4);
        let low = evaluate(&grid, NodeId(0), NodeId(15), 0.3, 8, 30, 3);
        let high = evaluate(&grid, NodeId(0), NodeId(15), 0.9, 8, 30, 3);
        assert!(
            high.delivery_probability >= low.delivery_probability,
            "p=0.9 {} vs p=0.3 {}",
            high.delivery_probability,
            low.delivery_probability
        );
    }

    #[test]
    fn recommend_meets_the_target_and_minimizes_traffic() {
        let grid = Topology::grid(4, 4);
        let choice = recommend(&grid, 0.9, &[0.5, 0.75, 1.0], &[8, 12], 15, 4)
            .expect("some candidate reaches 90%");
        assert!(choice.delivery_probability >= 0.9);
        // Every other qualifying candidate transmits at least as much.
        for &p in &[0.5, 0.75, 1.0] {
            for &ttl in &[8u8, 12] {
                let (s, d) = worst_case_pair(&grid);
                let point = evaluate(&grid, s, d, p, ttl, 15, 4);
                if point.delivery_probability >= 0.9 {
                    assert!(point.mean_packets + 1e-9 >= choice.mean_packets);
                }
            }
        }
    }

    #[test]
    fn impossible_target_returns_none() {
        let grid = Topology::grid(4, 4);
        // ttl 2 cannot cross 6 hops no matter what p is.
        let choice = recommend(&grid, 0.5, &[1.0], &[2], 5, 5);
        assert!(choice.is_none());
    }

    #[test]
    fn adjacent_trial_rng_streams_are_uncorrelated() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use std::collections::HashSet;

        // The old affine derivation (`seed * 1_000_003 + trial`) handed
        // consecutive integers to `seed_from_u64`, correlating adjacent
        // trials. The SplitMix64 route must give every trial in a window
        // a distinct seed *and* a distinct first draw, for several bases.
        for base in [0u64, 7, 42, u64::MAX - 3] {
            let mut seeds = HashSet::new();
            let mut first_draws = HashSet::new();
            for trial in 0..256u64 {
                let s = derive_trial_seed(base, trial);
                assert!(seeds.insert(s), "seed collision at trial {trial}");
                let draw: u64 = StdRng::seed_from_u64(s).gen();
                assert!(
                    first_draws.insert(draw),
                    "correlated first draw at base {base} trial {trial}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let grid = Topology::grid(2, 2);
        let _ = evaluate(&grid, NodeId(0), NodeId(3), 0.5, 8, 0, 0);
    }
}
