//! Tune the paper's two design knobs — forwarding probability `p` and
//! TTL — for a target delivery reliability on the worst-case node pair,
//! minimizing traffic (the Equation 3 energy proxy).
//!
//! ```text
//! cargo run --release --example protocol_tuning
//! ```

use ocsc::noc_fabric::Topology;
use ocsc::stochastic_noc::tuning::{evaluate, recommend, worst_case_pair};

fn main() {
    let grid = Topology::grid(4, 4);
    let (source, destination) = worst_case_pair(&grid);
    println!("worst-case pair on 4x4 grid: {source} -> {destination}");
    println!();
    println!("p\tttl\tdelivery\tlatency [rounds]\tpackets");
    for &p in &[0.25, 0.5, 0.75, 1.0] {
        for &ttl in &[6u8, 10, 14] {
            let point = evaluate(&grid, source, destination, p, ttl, 40, 1);
            println!(
                "{:.2}\t{}\t{:.2}\t{}\t{:.0}",
                point.p,
                point.ttl,
                point.delivery_probability,
                point
                    .mean_latency
                    .map_or("-".to_string(), |l| format!("{l:.1}")),
                point.mean_packets
            );
        }
    }
    println!();
    for target in [0.9, 0.99] {
        match recommend(&grid, target, &[0.25, 0.5, 0.75, 1.0], &[6, 10, 14], 40, 1) {
            Some(choice) => println!(
                "target {target:.2}: use p = {:.2}, ttl = {} ({:.0} packets/message, {:.0}% delivery)",
                choice.p,
                choice.ttl,
                choice.mean_packets,
                choice.delivery_probability * 100.0
            ),
            None => println!("target {target:.2}: no candidate on the grid reaches it"),
        }
    }
}
