//! Benchmarks the parallel Monte-Carlo [`TrialRunner`] against its own
//! single-worker mode on a real simulation workload.
//!
//! On a machine with ≥4 cores the `parallel-auto` variant should report
//! at least a 2× lower time per iteration than `serial-1`; on a
//! single-core host the two coincide (the runner falls back to the
//! serial fast path).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use noc_experiments::TrialRunner;
use stochastic_noc::spread;

/// Trials per runner invocation. Large enough that worker start-up cost
/// is amortised, small enough for quick iterations.
const TRIALS: u64 = 32;

/// One CPU-bound trial: the Figure 3-1 rumor spread at reduced size.
fn rumor_trial(seed: u64) -> usize {
    let curve = spread::simulate_rumor(400, 16, seed);
    curve.last().copied().unwrap_or(0)
}

fn bench_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("runner");
    group.throughput(Throughput::Elements(TRIALS));

    group.bench_function("serial-1", |b| {
        b.iter(|| {
            let informed = TrialRunner::new(2003, TRIALS).threads(1).run(rumor_trial);
            black_box(informed)
        })
    });

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    group.bench_function(format!("parallel-auto({workers})"), |b| {
        b.iter(|| {
            let informed = TrialRunner::new(2003, TRIALS).run(rumor_trial);
            black_box(informed)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_runner);
criterion_main!(benches);
