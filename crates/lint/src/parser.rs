//! Token-tree parsing: brace/bracket/paren matching over the lexer's
//! significant-token stream.
//!
//! The structural rules ([`crate::structural`]) need to know *where an
//! item ends* — which `}` closes a struct body, which `)` closes a call
//! — and flat token scans cannot answer that. This module groups the
//! stream into trees: a [`Tree::Leaf`] is the index of one ordinary
//! token, a [`Tree::Group`] is a delimited region with its children.
//!
//! The parser is total, like the lexer: a stray closer at top level
//! becomes a leaf, and an unterminated group closes at end of input.
//! For robustness against mid-edit code, *any* closer closes the
//! innermost open group regardless of delimiter kind — the compiler
//! owns syntax errors, the linter only needs sane recovery.

use crate::lexer::Token;

/// A delimiter kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

impl Delim {
    fn of_open(text: &str) -> Option<Delim> {
        match text {
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            "{" => Some(Delim::Brace),
            _ => None,
        }
    }
}

fn is_close(text: &str) -> bool {
    matches!(text, ")" | "]" | "}")
}

/// One node of the token tree. Leaves and group bounds are indices into
/// the token slice the tree was parsed from, so positions and text stay
/// owned by the lexer output.
#[derive(Debug)]
pub enum Tree {
    /// Index of a non-delimiter token.
    Leaf(usize),
    /// A delimited region.
    Group(Group),
}

impl Tree {
    /// Token index where this node starts.
    pub fn start(&self) -> usize {
        match self {
            Tree::Leaf(i) => *i,
            Tree::Group(g) => g.open,
        }
    }
}

/// A delimited region of the token stream.
#[derive(Debug)]
pub struct Group {
    pub delim: Delim,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter. For an unterminated group
    /// this is the last token consumed (degenerate but in range).
    pub close: usize,
    pub children: Vec<Tree>,
}

/// Parses the whole token slice into a forest of sibling trees.
pub fn parse(tokens: &[Token]) -> Vec<Tree> {
    let mut pos = 0usize;
    parse_siblings(tokens, &mut pos, false).0
}

fn parse_siblings(tokens: &[Token], pos: &mut usize, in_group: bool) -> (Vec<Tree>, Option<usize>) {
    let mut out = Vec::new();
    while *pos < tokens.len() {
        let text = tokens[*pos].text.as_str();
        if let Some(delim) = Delim::of_open(text) {
            let open = *pos;
            *pos += 1;
            let (children, close) = parse_siblings(tokens, pos, true);
            let close = close.unwrap_or_else(|| pos.saturating_sub(1).max(open));
            out.push(Tree::Group(Group {
                delim,
                open,
                close,
                children,
            }));
        } else if is_close(text) {
            if in_group {
                let close = *pos;
                *pos += 1;
                return (out, Some(close));
            }
            // Stray closer at top level: keep it as a leaf.
            out.push(Tree::Leaf(*pos));
            *pos += 1;
        } else {
            out.push(Tree::Leaf(*pos));
            *pos += 1;
        }
    }
    (out, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> (Vec<Token>, Vec<Tree>) {
        let tokens = lex(src).tokens;
        let trees = parse(&tokens);
        (tokens, trees)
    }

    /// Renders a forest as a compact shape string for assertions.
    fn shape(tokens: &[Token], trees: &[Tree]) -> String {
        let mut out = String::new();
        for tree in trees {
            match tree {
                Tree::Leaf(i) => {
                    out.push_str(&tokens[*i].text);
                    out.push(' ');
                }
                Tree::Group(g) => {
                    let (open, close) = match g.delim {
                        Delim::Paren => ('(', ')'),
                        Delim::Bracket => ('[', ']'),
                        Delim::Brace => ('{', '}'),
                    };
                    out.push(open);
                    out.push_str(shape(tokens, &g.children).trim_end());
                    out.push(close);
                    out.push(' ');
                }
            }
        }
        out
    }

    #[test]
    fn nesting_matches_delimiters() {
        let (tokens, trees) = parsed("fn f(a: [u8; 4]) { g(a); }");
        assert_eq!(
            shape(&tokens, &trees).trim_end(),
            "fn f (a : [u8 ; 4]) {g (a) ;}"
        );
    }

    #[test]
    fn group_bounds_index_the_delimiter_tokens() {
        let (tokens, trees) = parsed("call(x, y)");
        let Tree::Group(g) = &trees[1] else {
            panic!("expected a group");
        };
        assert_eq!(tokens[g.open].text, "(");
        assert_eq!(tokens[g.close].text, ")");
        assert_eq!(g.children.len(), 3);
        assert_eq!(trees[1].start(), g.open);
    }

    #[test]
    fn inner_attribute_soup_becomes_clean_groups() {
        let (tokens, trees) = parsed("#![forbid(unsafe_code)]\nmod x;");
        assert_eq!(
            shape(&tokens, &trees).trim_end(),
            "# ! [forbid (unsafe_code)] mod x ;"
        );
    }

    #[test]
    fn unterminated_group_closes_at_eof() {
        let (tokens, trees) = parsed("fn f() { let x = (1;");
        // The forest still covers every token without panicking.
        let rendered = shape(&tokens, &trees);
        assert!(rendered.contains("fn f"));
        assert!(rendered.contains("(1 ;"));
    }

    #[test]
    fn stray_closer_is_a_top_level_leaf() {
        let (tokens, trees) = parsed("} fn f() {}");
        assert_eq!(shape(&tokens, &trees).trim_end(), "} fn f () {}");
    }

    #[test]
    fn mismatched_closer_still_closes_the_group() {
        // Degenerate input: recovery closes the innermost group.
        let (tokens, trees) = parsed("(a] b");
        let rendered = shape(&tokens, &trees);
        assert!(rendered.starts_with("(a)"), "{rendered}");
        assert!(rendered.contains('b'));
    }
}
