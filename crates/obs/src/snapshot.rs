//! Point-in-time snapshots of a [`crate::Metrics`] registry and their
//! two text encodings: a JSON document (for artifacts and scripted
//! validation) and Prometheus text exposition (for scraping).
//!
//! Both writers are hand-rolled string formatting, like every other
//! serializer in the workspace (the vendored `serde` is a no-op shim).
//! Durations are carried as integer nanoseconds end-to-end and rendered
//! to decimal seconds exactly, so snapshot bytes never depend on float
//! formatting quirks.

use crate::registry::{bucket_upper_nanos, HISTOGRAM_BUCKETS};

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Counter value.
    pub value: u64,
}

/// One gauge's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Gauge value.
    pub value: f64,
}

/// One histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations, nanoseconds.
    pub sum_nanos: u64,
    /// Largest observation, nanoseconds.
    pub max_nanos: u64,
    /// Median upper-bound estimate, nanoseconds.
    pub p50_nanos: u64,
    /// 90th-percentile upper-bound estimate, nanoseconds.
    pub p90_nanos: u64,
    /// 99th-percentile upper-bound estimate, nanoseconds.
    pub p99_nanos: u64,
    /// Raw (non-cumulative) per-bucket counts; see
    /// [`crate::HISTOGRAM_BUCKETS`] for the bucket scheme.
    pub buckets: Vec<u64>,
}

impl HistogramSample {
    /// Sum of observations, seconds.
    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos as f64 * 1e-9
    }

    /// Largest observation, seconds.
    pub fn max_secs(&self) -> f64 {
        self.max_nanos as f64 * 1e-9
    }
}

/// Everything a registry knew at one instant, in stable order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter samples, ordered by name then labels.
    pub counters: Vec<CounterSample>,
    /// Gauge samples, ordered by name then labels.
    pub gauges: Vec<GaugeSample>,
    /// Histogram samples, ordered by name then labels.
    pub histograms: Vec<HistogramSample>,
}

/// Escapes a string for a JSON string literal or a Prometheus label
/// value (the required escapes coincide: backslash, quote, newline).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders integer nanoseconds as an exact decimal-seconds literal
/// ("1400" ns → "0.0000014"), with no float rounding involved.
fn secs(nanos: u64) -> String {
    let whole = nanos / 1_000_000_000;
    let frac = nanos % 1_000_000_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let mut s = format!("{whole}.{frac:09}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

/// Renders a float as a JSON-safe number (plain decimal, never NaN/Inf).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_labels(labels: &[(String, String)]) -> String {
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Prometheus label block: `{k="v",...}`, or empty when label-free.
fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl MetricsSnapshot {
    /// The snapshot as one JSON document:
    ///
    /// ```json
    /// {"plane": "wall-clock",
    ///  "counters": [{"name":"...","labels":{},"value":17}],
    ///  "gauges": [{"name":"...","labels":{},"value":42.5}],
    ///  "histograms": [{"name":"...","labels":{},"count":3,
    ///                  "sum_seconds":0.1,"max_seconds":0.05,
    ///                  "p50_seconds":0.01,"p90_seconds":0.05,
    ///                  "p99_seconds":0.05}]}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"plane\": \"wall-clock\",\n  \"counters\": [");
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|c| {
                format!(
                    "\n    {{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                    escape(&c.name),
                    json_labels(&c.labels),
                    c.value
                )
            })
            .collect();
        out.push_str(&counters.join(","));
        if !counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"gauges\": [");
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|g| {
                format!(
                    "\n    {{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                    escape(&g.name),
                    json_labels(&g.labels),
                    num(g.value)
                )
            })
            .collect();
        out.push_str(&gauges.join(","));
        if !gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": [");
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "\n    {{\"name\":\"{}\",\"labels\":{},\"count\":{},\
                     \"sum_seconds\":{},\"max_seconds\":{},\
                     \"p50_seconds\":{},\"p90_seconds\":{},\"p99_seconds\":{}}}",
                    escape(&h.name),
                    json_labels(&h.labels),
                    h.count,
                    secs(h.sum_nanos),
                    secs(h.max_nanos),
                    secs(h.p50_nanos),
                    secs(h.p90_nanos),
                    secs(h.p99_nanos)
                )
            })
            .collect();
        out.push_str(&hists.join(","));
        if !hists.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The snapshot in Prometheus text exposition format: counters and
    /// gauges as single samples, histograms as cumulative `_bucket`
    /// series (sparse — only edges whose bucket is populated — plus the
    /// mandatory `+Inf`), `_sum`, and `_count`, with a `_max` gauge for
    /// the exact maximum the bucket scheme can't represent.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let tag = format!("{name}/{kind}");
            if last_type.as_deref() != Some(tag.as_str()) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_type = Some(tag);
            }
        };
        for c in &self.counters {
            type_line(&mut out, &c.name, "counter");
            out.push_str(&format!(
                "{}{} {}\n",
                c.name,
                prom_labels(&c.labels, None),
                c.value
            ));
        }
        for g in &self.gauges {
            type_line(&mut out, &g.name, "gauge");
            out.push_str(&format!(
                "{}{} {}\n",
                g.name,
                prom_labels(&g.labels, None),
                num(g.value)
            ));
        }
        for h in &self.histograms {
            type_line(&mut out, &h.name, "histogram");
            let mut cum = 0u64;
            for (i, &n) in h.buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                if n == 0 {
                    continue;
                }
                cum += n;
                let le = bucket_upper_nanos(i).map(secs).unwrap_or_default();
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    h.name,
                    prom_labels(&h.labels, Some(("le", &le))),
                    cum
                ));
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                h.name,
                prom_labels(&h.labels, Some(("le", "+Inf"))),
                h.count
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                h.name,
                prom_labels(&h.labels, None),
                secs(h.sum_nanos)
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                h.name,
                prom_labels(&h.labels, None),
                h.count
            ));
            out.push_str(&format!(
                "{}_max{} {}\n",
                h.name,
                prom_labels(&h.labels, None),
                secs(h.max_nanos)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Metrics;

    fn sample_registry() -> Metrics {
        let m = Metrics::new();
        m.counter("engine_rounds_total", &[]).add(17);
        m.gauge("runner_trials_per_sec", &[("figure", "fig3-3")])
            .set(42.5);
        let h = m.histogram("engine_phase_seconds", &[("phase", "merge")]);
        h.observe_nanos(900);
        h.observe_nanos(1100);
        h.observe_nanos(1100);
        m
    }

    #[test]
    fn nanos_render_as_exact_decimal_seconds() {
        assert_eq!(secs(0), "0");
        assert_eq!(secs(1), "0.000000001");
        assert_eq!(secs(1023), "0.000001023");
        assert_eq!(secs(3_100), "0.0000031");
        assert_eq!(secs(1_000_000_000), "1");
        assert_eq!(secs(1_500_000_000), "1.5");
        assert_eq!(secs(12_345_678_901), "12.345678901");
    }

    #[test]
    fn json_snapshot_contains_every_instrument() {
        let json = sample_registry().snapshot().to_json();
        assert!(json.contains("\"plane\": \"wall-clock\""));
        assert!(json.contains("{\"name\":\"engine_rounds_total\",\"labels\":{},\"value\":17}"));
        assert!(json.contains("\"name\":\"runner_trials_per_sec\""));
        assert!(json.contains("\"labels\":{\"figure\":\"fig3-3\"}"));
        assert!(json.contains("\"value\":42.5"));
        assert!(json.contains("\"name\":\"engine_phase_seconds\""));
        assert!(json.contains("\"labels\":{\"phase\":\"merge\"}"));
        assert!(json.contains("\"count\":3"));
        // 900 + 1100 + 1100 ns, rendered exactly.
        assert!(json.contains("\"sum_seconds\":0.0000031"), "{json}");
        assert!(json.contains("\"max_seconds\":0.0000011"), "{json}");
    }

    #[test]
    fn json_snapshot_is_structurally_balanced() {
        // Empty and populated snapshots must both nest correctly (a
        // cheap stand-in for a parser the workspace doesn't vendor; CI
        // runs a real `json.loads` over the artifact).
        for json in [
            MetricsSnapshot::default().to_json(),
            sample_registry().snapshot().to_json(),
        ] {
            let opens = json.matches(['{', '[']).count();
            let closes = json.matches(['}', ']']).count();
            assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
            assert!(!json.contains("NaN") && !json.contains("inf"));
        }
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let text = sample_registry().snapshot().to_prometheus();
        assert!(text.contains("# TYPE engine_rounds_total counter"));
        assert!(text.contains("engine_rounds_total 17"));
        assert!(text.contains("# TYPE runner_trials_per_sec gauge"));
        assert!(text.contains("runner_trials_per_sec{figure=\"fig3-3\"} 42.5"));
        assert!(text.contains("# TYPE engine_phase_seconds histogram"));
        // 900ns has bit length 10 (le 1023ns); 1100ns bit length 11
        // (le 2047ns). Buckets are cumulative: 1 then 3.
        assert!(
            text.contains("engine_phase_seconds_bucket{phase=\"merge\",le=\"0.000001023\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("engine_phase_seconds_bucket{phase=\"merge\",le=\"0.000002047\"} 3"),
            "{text}"
        );
        assert!(text.contains("engine_phase_seconds_bucket{phase=\"merge\",le=\"+Inf\"} 3"));
        assert!(text.contains("engine_phase_seconds_sum{phase=\"merge\"} 0.0000031"));
        assert!(text.contains("engine_phase_seconds_count{phase=\"merge\"} 3"));
        assert!(text.contains("engine_phase_seconds_max{phase=\"merge\"} 0.0000011"));
    }

    #[test]
    fn type_headers_are_not_repeated_within_a_family() {
        let m = Metrics::new();
        m.counter("jobs", &[("kind", "a")]).inc();
        m.counter("jobs", &[("kind", "b")]).inc();
        let text = m.snapshot().to_prometheus();
        assert_eq!(text.matches("# TYPE jobs counter").count(), 1);
        assert!(text.contains("jobs{kind=\"a\"} 1"));
        assert!(text.contains("jobs{kind=\"b\"} 1"));
    }

    #[test]
    fn label_escaping_covers_quotes_backslashes_newlines() {
        let m = Metrics::new();
        m.counter("weird", &[("path", "C:\\tmp\"x\"\nend")]).inc();
        let text = m.snapshot().to_prometheus();
        assert!(
            text.contains("weird{path=\"C:\\\\tmp\\\"x\\\"\\nend\"} 1"),
            "{text}"
        );
        let json = m.snapshot().to_json();
        assert!(
            json.contains("\"labels\":{\"path\":\"C:\\\\tmp\\\"x\\\"\\nend\"}"),
            "{json}"
        );
        // Control characters become \u escapes in both encodings.
        let m2 = Metrics::new();
        m2.counter("ctl", &[("v", "a\tb")]).inc();
        assert!(m2.snapshot().to_json().contains("a\\u0009b"));
    }
}
