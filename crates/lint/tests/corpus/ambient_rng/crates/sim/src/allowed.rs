//! Allowlisted negative: seed arithmetic under a reasoned annotation.

pub fn legacy_seed(seed: u64, trial: u64) -> u64 {
    // noc-lint: allow(ambient-rng, reason = "legacy derivation frozen to keep published golden digests reproducible")
    seed + trial
}
