//! Figure 3-1 / 3-3 benches: epidemic spread theory, the rumor Monte
//! Carlo, and a full gossip broadcast on the 4x4 grid.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_fabric::{Grid2d, NodeId};
use std::hint::black_box;
use stochastic_noc::{spread, SimulationBuilder, StochasticConfig};

fn bench_spread(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3-1 spread");
    group.sample_size(20);

    group.bench_function("deterministic_curve n=1000 t=20", |b| {
        b.iter(|| spread::deterministic_curve(black_box(1000), black_box(20)))
    });
    group.bench_function("simulate_rumor n=1000 t=20", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            spread::simulate_rumor(black_box(1000), black_box(20), seed)
        })
    });
    group.bench_function("fig3-3 broadcast 4x4 p=0.5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
                .config(StochasticConfig::new(0.5, 12).unwrap().with_max_rounds(40))
                .seed(seed)
                .build();
            sim.inject(NodeId(5), NodeId(11), b"bench".to_vec());
            black_box(sim.run().packets_sent)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spread);
criterion_main!(benches);
