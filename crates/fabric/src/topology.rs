//! Network topologies: the grid of Figure 3-2b, the fully connected graph
//! of Figure 3-2a, and arbitrary custom graphs for hybrid architectures.

use std::collections::VecDeque;

use serde::Serialize;

use crate::node::{LinkId, NodeId};

/// One *directed* link of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Link {
    /// This link's identifier.
    pub id: LinkId,
    /// Sending endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
}

/// A directed multigraph of tiles and links.
///
/// All simulation engines in this workspace operate on a `Topology`;
/// convenience constructors build the two shapes studied by the paper, and
/// [`Topology::from_links`] supports the custom hierarchies of Chapter 5.
///
/// # Examples
///
/// ```
/// use noc_fabric::{NodeId, Topology};
///
/// let t = Topology::grid(4, 4);
/// assert_eq!(t.node_count(), 16);
/// // An interior tile has 4 outgoing links:
/// assert_eq!(t.out_links(NodeId(5)).len(), 4);
/// // A corner tile has 2:
/// assert_eq!(t.out_links(NodeId(0)).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Topology {
    name: String,
    node_count: usize,
    links: Vec<Link>,
    out: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Builds a topology from explicit directed edges.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero, any endpoint is out of range, or an
    /// edge is a self-loop.
    pub fn from_links(
        name: impl Into<String>,
        node_count: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        assert!(node_count > 0, "a network needs at least one tile");
        let mut links = Vec::new();
        let mut out = vec![Vec::new(); node_count];
        for (from, to) in edges {
            assert!(
                from.index() < node_count && to.index() < node_count,
                "link {from}->{to} endpoint outside 0..{node_count}"
            );
            assert_ne!(from, to, "self-loop at {from}");
            let id = LinkId(links.len());
            links.push(Link { id, from, to });
            out[from.index()].push(id);
        }
        Self {
            name: name.into(),
            node_count,
            links,
            out,
        }
    }

    /// The `width × height` rectangular grid of tiles (Figure 3-2b), with
    /// a pair of directed links for every horizontal/vertical neighbour
    /// pair. Tiles are numbered row-major.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn grid(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        let idx = |x: usize, y: usize| NodeId(y * width + x);
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                if x + 1 < width {
                    edges.push((idx(x, y), idx(x + 1, y)));
                    edges.push((idx(x + 1, y), idx(x, y)));
                }
                if y + 1 < height {
                    edges.push((idx(x, y), idx(x, y + 1)));
                    edges.push((idx(x, y + 1), idx(x, y)));
                }
            }
        }
        Self::from_links(format!("grid {width}x{height}"), width * height, edges)
    }

    /// The `width × height` torus: a grid whose rows and columns wrap
    /// around. Every tile has degree 4, halving the worst-case hop count
    /// relative to the plain grid — a common NoC variant included for
    /// topology ablations.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is below 3 (wrap-around links would
    /// duplicate or self-loop).
    pub fn torus(width: usize, height: usize) -> Self {
        assert!(
            width >= 3 && height >= 3,
            "torus dimensions must be at least 3"
        );
        let idx = |x: usize, y: usize| NodeId(y * width + x);
        let mut edges = Vec::new();
        for y in 0..height {
            for x in 0..width {
                let right = idx((x + 1) % width, y);
                let down = idx(x, (y + 1) % height);
                edges.push((idx(x, y), right));
                edges.push((right, idx(x, y)));
                edges.push((idx(x, y), down));
                edges.push((down, idx(x, y)));
            }
        }
        Self::from_links(format!("torus {width}x{height}"), width * height, edges)
    }

    /// The fully connected network of Figure 3-2a: a directed link between
    /// every ordered pair of distinct tiles.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn fully_connected(n: usize) -> Self {
        assert!(n > 0, "a network needs at least one tile");
        let mut edges = Vec::new();
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    edges.push((NodeId(a), NodeId(b)));
                }
            }
        }
        Self::from_links(format!("fully connected {n}"), n, edges)
    }

    /// Human-readable topology name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tiles.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The link with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn link(&self, id: LinkId) -> Link {
        self.links[id.index()]
    }

    /// Outgoing links of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out[node.index()]
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count).map(NodeId)
    }

    /// Shortest hop distance between two nodes (BFS), or `None` if
    /// unreachable.
    pub fn hop_distance(&self, from: NodeId, to: NodeId) -> Option<usize> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![usize::MAX; self.node_count];
        dist[from.index()] = 0;
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            for &l in self.out_links(n) {
                let next = self.link(l).to;
                if dist[next.index()] == usize::MAX {
                    dist[next.index()] = dist[n.index()] + 1;
                    if next == to {
                        return Some(dist[next.index()]);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// The network diameter (longest shortest path), or `None` if the
    /// graph is disconnected.
    pub fn diameter(&self) -> Option<usize> {
        let mut best = 0;
        for a in self.nodes() {
            for b in self.nodes() {
                match self.hop_distance(a, b) {
                    Some(d) => best = best.max(d),
                    None => return None,
                }
            }
        }
        Some(best)
    }

    /// True if every node can reach every other node, *ignoring* the nodes
    /// and links for which the given predicates return `false` (used to
    /// check whether crash faults have partitioned the NoC).
    pub fn is_connected_with(
        &self,
        node_alive: impl Fn(NodeId) -> bool,
        link_alive: impl Fn(LinkId) -> bool,
    ) -> bool {
        let alive: Vec<NodeId> = self.nodes().filter(|&n| node_alive(n)).collect();
        let Some(&start) = alive.first() else {
            return true; // vacuously connected
        };
        let mut seen = vec![false; self.node_count];
        seen[start.index()] = true;
        let mut queue = VecDeque::from([start]);
        let mut count = 1;
        while let Some(n) = queue.pop_front() {
            for &l in self.out_links(n) {
                if !link_alive(l) {
                    continue;
                }
                let next = self.link(l).to;
                if node_alive(next) && !seen[next.index()] {
                    seen[next.index()] = true;
                    count += 1;
                    queue.push_back(next);
                }
            }
        }
        count == alive.len()
    }
}

/// A rectangular tile grid with geometric helpers on top of [`Topology`].
///
/// # Examples
///
/// ```
/// use noc_fabric::{Grid2d, NodeId};
///
/// let g = Grid2d::new(5, 5);
/// assert_eq!(g.width(), 5);
/// assert_eq!(g.node_at(2, 3), NodeId(17));
/// assert_eq!(g.coordinates(NodeId(17)), (2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Grid2d {
    width: usize,
    height: usize,
    topology: Topology,
}

impl Grid2d {
    /// Creates a `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            topology: Topology::grid(width, height),
        }
    }

    /// Grid width in tiles.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in tiles.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The underlying topology graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Node id at `(x, y)` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside grid");
        NodeId(y * self.width + x)
    }

    /// `(x, y)` coordinates of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn coordinates(&self, node: NodeId) -> (usize, usize) {
        assert!(
            node.index() < self.width * self.height,
            "{node} outside grid"
        );
        (node.index() % self.width, node.index() / self.width)
    }

    /// Manhattan distance between two tiles — the hop count of the optimal
    /// (flooding) route.
    pub fn manhattan_distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ax, ay) = self.coordinates(a);
        let (bx, by) = self.coordinates(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }
}

impl From<Grid2d> for Topology {
    fn from(g: Grid2d) -> Topology {
        g.topology
    }
}

impl AsRef<Topology> for Grid2d {
    fn as_ref(&self) -> &Topology {
        &self.topology
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grid_link_count() {
        // A w×h grid has 2*(w*(h-1) + h*(w-1)) directed links.
        let t = Topology::grid(4, 4);
        assert_eq!(t.link_count(), 2 * (4 * 3 + 4 * 3));
        let t = Topology::grid(5, 5);
        assert_eq!(t.link_count(), 2 * (5 * 4 + 5 * 4));
    }

    #[test]
    fn grid_degrees() {
        let t = Topology::grid(4, 4);
        let degree_counts: Vec<usize> = t.nodes().map(|n| t.out_links(n).len()).collect();
        assert_eq!(degree_counts.iter().filter(|&&d| d == 2).count(), 4); // corners
        assert_eq!(degree_counts.iter().filter(|&&d| d == 3).count(), 8); // edges
        assert_eq!(degree_counts.iter().filter(|&&d| d == 4).count(), 4); // interior
    }

    #[test]
    fn torus_is_regular_of_degree_four() {
        let t = Topology::torus(4, 4);
        assert_eq!(t.node_count(), 16);
        assert_eq!(t.link_count(), 2 * 2 * 16); // 2 dims x 2 dirs x tiles
        assert!(t.nodes().all(|n| t.out_links(n).len() == 4));
    }

    #[test]
    fn torus_halves_the_diameter() {
        let grid = Topology::grid(6, 6);
        let torus = Topology::torus(6, 6);
        assert_eq!(grid.diameter(), Some(10));
        assert_eq!(torus.diameter(), Some(6));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_torus_rejected() {
        let _ = Topology::torus(2, 4);
    }

    #[test]
    fn fully_connected_link_count() {
        let t = Topology::fully_connected(16);
        assert_eq!(t.link_count(), 16 * 15);
        assert!(t.nodes().all(|n| t.out_links(n).len() == 15));
        assert_eq!(t.diameter(), Some(1));
    }

    #[test]
    fn single_node_topologies() {
        let t = Topology::fully_connected(1);
        assert_eq!(t.link_count(), 0);
        assert_eq!(t.diameter(), Some(0));
    }

    #[test]
    fn grid_diameter_is_manhattan_extent() {
        let t = Topology::grid(4, 4);
        assert_eq!(t.diameter(), Some(6));
        let t = Topology::grid(5, 5);
        assert_eq!(t.diameter(), Some(8));
    }

    #[test]
    fn hop_distance_matches_manhattan_on_grid() {
        let g = Grid2d::new(4, 4);
        for a in g.topology().nodes() {
            for b in g.topology().nodes() {
                assert_eq!(
                    g.topology().hop_distance(a, b),
                    Some(g.manhattan_distance(a, b))
                );
            }
        }
    }

    #[test]
    fn producer_consumer_tiles_of_the_paper() {
        // Paper Figure 3-3: producer on tile 6, consumer on tile 12
        // (1-based) of a 4x4 grid; 0-based: 5 and 11; 3 hops apart, message
        // arrives at round 3 under flooding.
        let g = Grid2d::new(4, 4);
        assert_eq!(g.manhattan_distance(NodeId(5), NodeId(11)), 3);
    }

    #[test]
    fn connectivity_with_dead_column_partitions() {
        // Killing the middle column of a 3x3 grid disconnects it.
        let g = Grid2d::new(3, 3);
        let dead = [g.node_at(1, 0), g.node_at(1, 1), g.node_at(1, 2)];
        let connected = g
            .topology()
            .is_connected_with(|n| !dead.contains(&n), |_| true);
        assert!(!connected);
        assert!(g.topology().is_connected_with(|_| true, |_| true));
    }

    #[test]
    fn from_links_validates() {
        let r =
            std::panic::catch_unwind(|| Topology::from_links("bad", 2, [(NodeId(0), NodeId(5))]));
        assert!(r.is_err(), "out-of-range endpoint must panic");
        let r =
            std::panic::catch_unwind(|| Topology::from_links("bad", 2, [(NodeId(1), NodeId(1))]));
        assert!(r.is_err(), "self-loop must panic");
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn node_at_bounds_checked() {
        let g = Grid2d::new(2, 2);
        let _ = g.node_at(2, 0);
    }

    proptest! {
        #[test]
        fn grid_coordinates_round_trip(w in 1usize..8, h in 1usize..8) {
            let g = Grid2d::new(w, h);
            for n in g.topology().nodes() {
                let (x, y) = g.coordinates(n);
                prop_assert_eq!(g.node_at(x, y), n);
            }
        }

        #[test]
        fn grids_are_connected(w in 1usize..7, h in 1usize..7) {
            let t = Topology::grid(w, h);
            prop_assert!(t.is_connected_with(|_| true, |_| true));
            prop_assert_eq!(t.diameter(), Some((w - 1) + (h - 1)));
        }

        #[test]
        fn every_link_appears_in_exactly_one_out_list(w in 1usize..6, h in 1usize..6) {
            let t = Topology::grid(w, h);
            let mut seen = vec![0usize; t.link_count()];
            for n in t.nodes() {
                for &l in t.out_links(n) {
                    seen[l.index()] += 1;
                    prop_assert_eq!(t.link(l).from, n);
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }
    }
}
