//! Network-on-chip fabric substrate.
//!
//! Provides the structural pieces of the tile-based NoC of Figure 1-1 in
//! *On-Chip Stochastic Communication*: node/link identifiers, the grid and
//! fully-connected [`Topology`] graphs (Figure 3-2), the on-wire
//! [`Message`]/packet format protected by a CRC tag, finite receive
//! [`ReceiveBuffer`]s that drop their oldest entry on overflow, GALS
//! [`ClockDomain`]s with accumulated skew, and the [`IpCore`] trait that
//! application IPs implement (the computation side of the
//! computation/communication separation).
//!
//! # Examples
//!
//! ```
//! use noc_fabric::{Grid2d, NodeId};
//!
//! let grid = Grid2d::new(4, 4);
//! assert_eq!(grid.topology().node_count(), 16);
//! // Tile 6 and tile 12 of the paper's producer-consumer example are 3
//! // hops apart:
//! assert_eq!(grid.manhattan_distance(NodeId(5), NodeId(11)), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod clock;
mod ip;
mod node;
mod packet;
mod port;
mod topology;

pub use buffer::ReceiveBuffer;
pub use clock::ClockDomain;
pub use ip::{IpContext, IpCore, NullIp};
pub use node::{LinkId, NodeId};
pub use packet::{Message, MessageId, MessageView, ParsePacketError, WireCodec, HEADER_BYTES};
pub use port::Direction;
pub use topology::{Grid2d, Link, Topology};
