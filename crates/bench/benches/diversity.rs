//! Figure 5-3 bench: the three-architecture beamforming comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_diversity::{compare_architectures, ComparisonParams};
use std::hint::black_box;

fn bench_diversity(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5-3 diversity");
    group.sample_size(10);
    group.bench_function("compare three fabrics (quick)", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let params = ComparisonParams {
                seed,
                ..ComparisonParams::quick()
            };
            black_box(compare_architectures(&params).len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_diversity);
criterion_main!(benches);
