//! Workspace walking, test-code filtering, suppression, and rendering.

use std::fs;
use std::path::{Path, PathBuf};

use crate::annotations;
use crate::lexer::{self, Token};
use crate::rules::{self, Finding};

/// Directory names never descended into: generated output, third-party
/// stand-ins, test code (exempt from the shipped-code invariants), and
/// the lint corpus (which contains violations on purpose).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "corpus", ".git", ".github",
];

/// The outcome of linting a tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, allowed and not, sorted by (file, line, column,
    /// rule) so output is deterministic for any traversal order.
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings not covered by a reasoned allow — the gate condition.
    pub fn unallowed(&self) -> usize {
        self.findings.iter().filter(|f| !f.allowed).count()
    }

    /// Findings suppressed by a reasoned allow.
    pub fn allowed(&self) -> usize {
        self.findings.iter().filter(|f| f.allowed).count()
    }
}

/// Lints every `.rs` file under `root`.
///
/// # Errors
///
/// Returns an error string when `root` does not exist or a file cannot
/// be read.
pub fn lint_root(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rust_files(root, &mut files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();
    let mut report = Report::default();
    for file in &files {
        let source = fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let rel = relative_path(root, file);
        report.findings.extend(lint_source(&rel, &source));
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| {
        (&a.file, a.line, a.column, a.rule).cmp(&(&b.file, b.line, b.column, b.rule))
    });
    Ok(report)
}

/// Lints one file's source text under its workspace-relative path.
/// Exposed for the corpus harness and unit tests.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    let filtered = strip_test_items(&lexed.tokens);
    let (allows, bad) = annotations::parse(&lexed.comments);
    let mut findings = rules::check_file(rel_path, &filtered, &lexed.tokens);
    for f in &mut findings {
        if let Some(allow) = allows.iter().find(|a| a.covers(f.rule, f.line)) {
            f.allowed = true;
            f.reason = Some(allow.reason.clone());
        }
    }
    // Malformed annotations are findings themselves and cannot be
    // annotated away.
    for b in bad {
        findings.push(Finding {
            rule: "bad-annotation",
            file: rel_path.to_string(),
            line: b.line,
            column: 1,
            message: b.message,
            allowed: false,
            reason: None,
        });
    }
    findings
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Removes items gated behind a test attribute (`#[test]`, `#[cfg(test)]`
/// and `#[cfg(all(test, …))]`) from the token stream: test code is exempt
/// from the shipped-code invariants.
///
/// An attribute mentioning `not` (as in `#[cfg(not(test))]`) is treated
/// as non-test, so the guarded code stays linted.
fn strip_test_items(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "#" && tokens.get(i + 1).is_some_and(|t| t.text == "[") {
            let close = matching_bracket(tokens, i + 1);
            let body = &tokens[i + 2..close.min(tokens.len())];
            let is_test =
                body.iter().any(|t| t.text == "test") && !body.iter().any(|t| t.text == "not");
            if is_test {
                i = skip_attributes_and_item(tokens, close + 1);
                continue;
            }
            out.extend_from_slice(&tokens[i..=close.min(tokens.len() - 1)]);
            i = close + 1;
            continue;
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Skips any further attributes, then one item (to its closing `}` or a
/// top-level `;`), returning the index just past it.
fn skip_attributes_and_item(tokens: &[Token], mut i: usize) -> usize {
    while i < tokens.len()
        && tokens[i].text == "#"
        && tokens.get(i + 1).is_some_and(|t| t.text == "[")
    {
        i = matching_bracket(tokens, i + 1) + 1;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Renders the unallowed findings and a summary for terminals.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for f in report.findings.iter().filter(|f| !f.allowed) {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n",
            f.file, f.line, f.column, f.rule, f.message
        ));
    }
    out.push_str(&format!(
        "noc-lint: {} files scanned, {} findings ({} allowed, {} unallowed)\n",
        report.files_scanned,
        report.findings.len(),
        report.allowed(),
        report.unallowed(),
    ));
    out
}

/// Renders the full report (allowed findings included, with reasons) as
/// JSON with a stable field order — the CI artifact format.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(f.rule)));
        out.push_str(&format!("\"file\": {}, ", json_str(&f.file)));
        out.push_str(&format!("\"line\": {}, ", f.line));
        out.push_str(&format!("\"column\": {}, ", f.column));
        out.push_str(&format!("\"message\": {}, ", json_str(&f.message)));
        out.push_str(&format!("\"allowed\": {}, ", f.allowed));
        match &f.reason {
            Some(r) => out.push_str(&format!("\"reason\": {}", json_str(r))),
            None => out.push_str("\"reason\": null"),
        }
        out.push('}');
        if i + 1 < report.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"total\": {},\n", report.findings.len()));
    out.push_str(&format!("  \"allowed\": {},\n", report.allowed()));
    out.push_str(&format!("  \"unallowed\": {}\n", report.unallowed()));
    out.push_str("}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_in_test_modules_are_skipped() {
        let src = "pub fn ok() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { x.unwrap(); }\n}\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_not_test_code_stays_linted() {
        let src = "#[cfg(not(test))]\nfn f() { x.unwrap(); }\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn trailing_allow_suppresses_with_reason() {
        let src = "fn f() { x.unwrap(); } // noc-lint: allow(hot-path-panic, reason = \"startup only\")\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].allowed);
        assert_eq!(findings[0].reason.as_deref(), Some("startup only"));
    }

    #[test]
    fn own_line_allow_covers_next_line() {
        let src = "// noc-lint: allow(hot-path-panic, reason = \"boot\")\nfn f() { x.unwrap(); }\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert!(findings[0].allowed);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f() { x.unwrap(); } // noc-lint: allow(hot-path-panic)\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        let rules: Vec<_> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"hot-path-panic"));
        assert!(rules.contains(&"bad-annotation"));
        assert!(findings.iter().all(|f| !f.allowed));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src =
            "fn f() { x.unwrap(); } // noc-lint: allow(ambient-rng, reason = \"wrong rule\")\n";
        let findings = lint_source("crates/core/src/engine.rs", src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].allowed);
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: lint_source(
                "crates/core/src/engine.rs",
                "fn f() { x.expect(\"why\"); }\n",
            ),
            files_scanned: 1,
        };
        let json = render_json(&report);
        assert!(json.contains("\"rule\": \"hot-path-panic\""));
        assert!(json.contains("\"unallowed\": 1"));
        assert!(json.contains("\"files_scanned\": 1"));
    }
}
