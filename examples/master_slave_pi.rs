//! The §4.1.1 Master–Slave π computation with replicated slaves
//! surviving a tile crash.
//!
//! ```text
//! cargo run --example master_slave_pi
//! ```

use ocsc::noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
use ocsc::noc_faults::CrashSchedule;

fn main() {
    // Replicate every slave twice, then kill one replica of slave 0.
    let params = MasterSlaveParams {
        replication: 2,
        ..MasterSlaveParams::default()
    };
    let victim = MasterSlaveApp::new(params.clone()).slave_assignments()[0][0];
    let mut schedule = CrashSchedule::new();
    schedule.kill_tile(victim.index(), 0);

    println!("Master-Slave pi on a 5x5 stochastic NoC");
    println!("slaves           : 8, replicated x2");
    println!("killed replica   : {victim}");

    let outcome = MasterSlaveApp::new(MasterSlaveParams {
        crash_schedule: schedule,
        ..params
    })
    .run();

    println!("completed        : {}", outcome.completed);
    if let Some(pi) = outcome.pi_estimate {
        println!("pi estimate      : {pi:.9}");
        println!("true pi          : {:.9}", std::f64::consts::PI);
        println!(
            "error            : {:.2e}",
            (pi - std::f64::consts::PI).abs()
        );
    }
    if let Some(round) = outcome.completion_round {
        println!("completion round : {round}");
    }
    println!("packets sent     : {}", outcome.report.packets_sent);
    println!("energy           : {}", outcome.report.total_energy());
}
