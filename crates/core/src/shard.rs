//! Tile-partitioned shard workers for the intra-trial parallel engine.
//!
//! The sharded round loop splits the grid into contiguous tile ranges
//! and runs each range's receive/age/forward/file work on a scoped
//! thread. Determinism is preserved by a strict division of labour:
//!
//! * **Every RNG draw happens on the main thread**, in a sequential
//!   pre-pass that walks tiles in exactly the order the single-shard
//!   engine does and records the outcomes (overflow keep/drop verdicts
//!   in a [`ReceiveTape`], transmission outcomes in a [`ForwardTape`]).
//!   The shared fault stream is therefore consumed in the identical
//!   sequence for every shard count, which is what keeps reports
//!   byte-identical across `--shards N`.
//! * **Shard workers are RNG-free.** They execute the recorded
//!   outcomes: CRC decode, dedup, buffer insertion, frame encoding,
//!   scramble-mask application (upsets are XOR-linear, so the pre-pass
//!   captures the mask and workers apply it copy-on-write), and egress
//!   bucketing.
//! * **Merges walk shards in ascending tile order**, so per-location
//!   event order, report counter accumulation and delivery arbitration
//!   replay the sequential engine's order exactly.
//!
//! The worker functions here are pure with respect to the engine's RNG
//! and report state: they read shared topology/config/fault metadata,
//! mutate only their own tile chunk, and return everything else
//! (events, counter deltas, egress) for the main thread to merge.
//!
//! Fully-deterministic configurations (no upsets, no skew, no chaos, no
//! Byzantine tiles, every effective forwarding probability 0 or 1) skip
//! the forward tape entirely: [`forward_shard_uniform`] recomputes the
//! deterministic outcomes locally, which is the mega-grid flooding fast
//! path the `perf_baseline` gate measures.
//!
//! The same division of labour extends to the wall-clock plane
//! (DESIGN.md §13): **workers never read the clock**. Timing spans for
//! the tape pre-pass, the shard fan-out, and the merges are recorded
//! only on the main thread, bracketing the `run_shards` calls from
//! outside — so installing [`crate::EngineObs`] changes nothing about
//! what a worker computes, and the deterministic plane stays
//! byte-identical with observability enabled.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use noc_fabric::{LinkId, MessageId, NodeId, Topology, WireCodec};
use noc_faults::{AdversarialScenario, CrashSchedule};

use crate::engine::{Frame, FrameMemo};
use crate::events::{DropSite, SimEvent};
use crate::frontier::TileSet;
use crate::send_buffer::{InsertOutcome, SendBuffer};

/// Contiguous tile ranges `[lo, hi)` covering `0..n`, one per shard,
/// sized as evenly as integer division allows.
pub(crate) fn shard_ranges(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.max(1);
    (0..shards)
        .map(|s| (n * s / shards, n * (s + 1) / shards))
        .collect()
}

/// Splits one `&mut [T]` into per-shard chunks matching `ranges`
/// (which must be contiguous, ascending and cover the slice).
pub(crate) fn split_chunks<'a, T>(
    mut slice: &'a mut [T],
    ranges: &[(usize, usize)],
) -> Vec<&'a mut [T]> {
    let mut chunks = Vec::with_capacity(ranges.len());
    for &(lo, hi) in ranges {
        let (head, tail) = slice.split_at_mut(hi - lo);
        chunks.push(head);
        slice = tail;
    }
    chunks
}

/// One tile's pre-drawn probabilistic-overflow verdicts: `len` booleans
/// starting at `start` in [`ReceiveTape::keeps`], one per arriving
/// frame in arrival order (`true` = keep).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OverflowSpan {
    pub tile: u32,
    pub start: u32,
    pub len: u32,
}

/// The receive phase's pre-drawn RNG outcomes: per-frame overflow
/// keep/drop verdicts for every alive tile with arrivals, in ascending
/// tile order (the exact order the sequential engine draws them).
#[derive(Debug, Default)]
pub(crate) struct ReceiveTape {
    pub spans: Vec<OverflowSpan>,
    pub keeps: Vec<bool>,
}

impl ReceiveTape {
    pub fn clear(&mut self) {
        self.spans.clear();
        self.keeps.clear();
    }
}

/// How a receive worker applies overflow for its tiles.
#[derive(Clone, Copy)]
pub(crate) enum OverflowPlan<'a> {
    /// No overflow possible this round (fault-free or `p_overflow = 0`).
    None,
    /// Structural drop-oldest beyond `capacity` — deterministic, so
    /// workers apply it locally without a tape.
    Structural { capacity: usize },
    /// Probabilistic verdicts pre-drawn on the main thread.
    Tape(&'a ReceiveTape),
}

/// Shared read-only context for the receive workers of one round.
pub(crate) struct ReceiveCtx<'a> {
    pub round: u64,
    /// Tiles with a non-empty arrival vector this round.
    pub frontier: &'a TileSet,
    pub codec: &'a WireCodec,
    pub tiles_alive: &'a [bool],
    pub crash_schedule: &'a CrashSchedule,
    pub overflow: OverflowPlan<'a>,
    /// Message ids whose spread terminated in an earlier round.
    pub terminated: &'a BTreeSet<MessageId>,
    /// Ids first delivered *this* round, mapped to the lowest-index
    /// tile delivering them (from [`plan_terminations`]); suppression
    /// applies only to strictly later tiles, exactly like the
    /// sequential engine's immediate `terminated.insert`.
    pub newly_terminated: &'a BTreeMap<MessageId, usize>,
    pub terminate_on_delivery: bool,
    pub ip_is_custom: &'a [bool],
    /// False for sinks that discard events ([`crate::events::NullSink`]);
    /// workers then skip event collection entirely.
    pub record_events: bool,
}

/// Everything a receive worker reports back for the ordered merge.
#[derive(Debug, Default)]
pub(crate) struct ReceiveOut {
    /// Events in emission order. `Delivery` entries are *candidates*:
    /// the merge arbitrates first-delivery through
    /// `SimulationReport::record_delivery` in shard order and drops the
    /// losers, replicating the sequential engine's event stream.
    pub events: Vec<SimEvent>,
    /// Delivery candidates in tile order (always collected, also when
    /// events are not).
    pub deliveries: Vec<MessageId>,
    /// First-sighting message ids, in observation order, for the
    /// informed-population map.
    pub informed: Vec<MessageId>,
    /// Tiles whose buffer accepted at least one insertion.
    pub touched: Vec<u32>,
    pub inserted: u64,
    pub crash_drops: u64,
    pub overflow_drops: u64,
    pub upsets_detected: u64,
    pub upsets_undetected: u64,
}

/// Runs the receive phase over tiles `[lo, lo + inbox.len())`.
///
/// `inbox`, `buffers` and `delivery_scratch` are this shard's chunks
/// (index `tile - lo`); everything in `ctx` is shared read-only state.
/// Consumes no RNG: probabilistic overflow verdicts come pre-drawn on
/// the tape.
#[allow(clippy::type_complexity)] // mirrors the engine's per-tile delivery scratch layout
pub(crate) fn receive_shard(
    ctx: &ReceiveCtx<'_>,
    lo: usize,
    inbox: &mut [Vec<Frame>],
    buffers: &mut [SendBuffer],
    delivery_scratch: &mut [Vec<(NodeId, Arc<[u8]>)>],
) -> ReceiveOut {
    let hi = lo + inbox.len();
    let round = ctx.round;
    let mut out = ReceiveOut::default();
    // Ids this shard has delivered (and terminated) itself, so a second
    // copy arriving at the same tile later in the round is suppressed
    // exactly like the sequential engine's immediate `terminated` insert.
    let mut local_term: BTreeSet<MessageId> = BTreeSet::new();
    let mut span_cursor = match &ctx.overflow {
        OverflowPlan::Tape(tape) => tape.spans.partition_point(|s| (s.tile as usize) < lo),
        _ => 0,
    };
    for tile in ctx.frontier.iter_range(lo, hi) {
        let frames = &mut inbox[tile - lo];
        if frames.is_empty() {
            continue;
        }
        let node = NodeId(tile);
        if !ctx.tiles_alive[tile] || ctx.crash_schedule.tile_dead(tile, round) {
            out.crash_drops += frames.len() as u64;
            if ctx.record_events {
                for _ in 0..frames.len() {
                    out.events.push(SimEvent::CrashDrop {
                        round,
                        site: DropSite::Tile(node),
                    });
                }
            }
            frames.clear();
            continue;
        }
        // Overflow: apply the pre-drawn verdicts (or the deterministic
        // structural policy) in place, then drain survivors.
        match &ctx.overflow {
            OverflowPlan::None => {}
            OverflowPlan::Structural { capacity } => {
                if frames.len() > *capacity {
                    let excess = frames.len() - capacity;
                    frames.drain(..excess);
                    out.overflow_drops += excess as u64;
                    if ctx.record_events {
                        for _ in 0..excess {
                            out.events
                                .push(SimEvent::OverflowDrop { round, tile: node });
                        }
                    }
                }
            }
            OverflowPlan::Tape(tape) => {
                // Spans were generated from the same frontier walk, so
                // the next span in range is this tile's.
                let span = &tape.spans[span_cursor];
                debug_assert_eq!(span.tile as usize, tile, "overflow tape out of step");
                span_cursor += 1;
                let keeps = &tape.keeps[span.start as usize..(span.start + span.len) as usize];
                debug_assert_eq!(keeps.len(), frames.len());
                let before = frames.len();
                let mut k = 0;
                frames.retain(|_| {
                    let keep = keeps[k];
                    k += 1;
                    keep
                });
                let dropped = (before - frames.len()) as u64;
                out.overflow_drops += dropped;
                if ctx.record_events {
                    for _ in 0..dropped {
                        out.events
                            .push(SimEvent::OverflowDrop { round, tile: node });
                    }
                }
            }
        }
        let buffer = &mut buffers[tile - lo];
        let mut inserted_here = false;
        for frame in frames.drain(..) {
            // Suppression check shared by both decode paths: spreads
            // terminated in earlier rounds, spreads terminated this
            // round by a lower-index tile, or by this shard itself.
            let spread_terminated = |id: MessageId, local: &BTreeSet<MessageId>| {
                ctx.terminated.contains(&id)
                    || ctx.newly_terminated.get(&id).is_some_and(|&d| d < tile)
                    || local.contains(&id)
            };
            let view = if frame.scrambled {
                match ctx.codec.decode_view(&frame.bytes) {
                    Ok(view) => {
                        if spread_terminated(view.id, &local_term) {
                            if ctx.record_events {
                                out.events.push(SimEvent::DuplicateDrop {
                                    round,
                                    tile: node,
                                    message: view.id,
                                });
                            }
                            continue;
                        }
                        out.upsets_undetected += 1;
                        if ctx.record_events {
                            out.events.push(SimEvent::UndetectedUpset {
                                round,
                                tile: node,
                                message: view.id,
                            });
                        }
                        if buffer.has_seen(view.id) {
                            if ctx.record_events {
                                out.events.push(SimEvent::DuplicateDrop {
                                    round,
                                    tile: node,
                                    message: view.id,
                                });
                            }
                            continue;
                        }
                        view
                    }
                    Err(_) => {
                        out.upsets_detected += 1;
                        if ctx.record_events {
                            out.events.push(SimEvent::CrcReject {
                                round,
                                tile: node,
                                link: frame.via,
                            });
                        }
                        continue;
                    }
                }
            } else {
                // Self-encoded frames always carry a full header; the
                // sequential engine asserts this, the shard worker just
                // skips the (unreachable) malformed case to keep the
                // hot path panic-free.
                let Some(id) = ctx.codec.peek_id(&frame.bytes) else {
                    continue;
                };
                if spread_terminated(id, &local_term) || buffer.has_seen(id) {
                    if ctx.record_events {
                        out.events.push(SimEvent::DuplicateDrop {
                            round,
                            tile: node,
                            message: id,
                        });
                    }
                    continue;
                }
                match ctx.codec.decode_view_trusted(&frame.bytes) {
                    Ok(view) => view,
                    Err(_) => continue,
                }
            };
            out.informed.push(view.id);
            let message = view.to_message();
            if message.destination == node {
                out.deliveries.push(message.id);
                if ctx.record_events {
                    out.events.push(SimEvent::Delivery {
                        round,
                        tile: node,
                        message: message.id,
                        source: message.source,
                    });
                }
                if ctx.ip_is_custom[tile] {
                    delivery_scratch[tile - lo]
                        .push((message.source, Arc::clone(&message.payload)));
                }
                if ctx.terminate_on_delivery {
                    local_term.insert(message.id);
                }
            }
            let id = message.id;
            match buffer.insert_checked(message) {
                InsertOutcome::Inserted => {
                    out.inserted += 1;
                    inserted_here = true;
                }
                InsertOutcome::ExpiredOnArrival => {
                    if ctx.record_events {
                        out.events.push(SimEvent::TtlExpiry {
                            round,
                            tile: node,
                            message: id,
                        });
                    }
                }
                InsertOutcome::AlreadySeen => {}
            }
        }
        if inserted_here {
            out.touched.push(tile as u32);
        }
    }
    out
}

/// Pre-computes which message ids terminate this round and at which
/// (lowest-index) tile, by replaying the receive phase's delivery logic
/// without side effects. Only needed under `terminate_on_delivery`,
/// where one tile's delivery must suppress the same id at later tiles
/// within the same round — cross-shard information a worker cannot see.
///
/// Runs on the main thread before the workers; consumes no RNG
/// (probabilistic overflow verdicts are read from the tape).
#[allow(clippy::too_many_arguments)] // the receive phase's split borrows, passed explicitly
pub(crate) fn plan_terminations(
    round: u64,
    frontier: &TileSet,
    inbox: &[Vec<Frame>],
    buffers: &[SendBuffer],
    codec: &WireCodec,
    tiles_alive: &[bool],
    crash_schedule: &CrashSchedule,
    overflow: &OverflowPlan<'_>,
    terminated: &BTreeSet<MessageId>,
) -> BTreeMap<MessageId, usize> {
    let mut newly: BTreeMap<MessageId, usize> = BTreeMap::new();
    let mut local_seen: BTreeSet<MessageId> = BTreeSet::new();
    let mut span_cursor = 0usize;
    for tile in frontier.iter() {
        let frames = &inbox[tile];
        if frames.is_empty() {
            continue;
        }
        if !tiles_alive[tile] || crash_schedule.tile_dead(tile, round) {
            continue;
        }
        let node = NodeId(tile);
        local_seen.clear();
        // Index of the first surviving frame under structural overflow;
        // under the tape, per-frame verdicts.
        let (skip, keeps): (usize, Option<&[bool]>) = match overflow {
            OverflowPlan::None => (0, None),
            OverflowPlan::Structural { capacity } => (frames.len().saturating_sub(*capacity), None),
            OverflowPlan::Tape(tape) => {
                let span = &tape.spans[span_cursor];
                debug_assert_eq!(span.tile as usize, tile, "overflow tape out of step");
                span_cursor += 1;
                let keeps = &tape.keeps[span.start as usize..(span.start + span.len) as usize];
                (0, Some(keeps))
            }
        };
        for (k, frame) in frames.iter().enumerate() {
            if k < skip || keeps.is_some_and(|keeps| !keeps[k]) {
                continue;
            }
            let (id, destination) = if frame.scrambled {
                match codec.decode_view(&frame.bytes) {
                    Ok(view) => (view.id, view.destination),
                    Err(_) => continue,
                }
            } else {
                match codec.decode_view_trusted(&frame.bytes) {
                    Ok(view) => (view.id, view.destination),
                    Err(_) => continue,
                }
            };
            // A `newly` entry at this very tile means an earlier frame
            // in this loop already delivered the id here, so `<=`.
            if terminated.contains(&id) || newly.get(&id).is_some_and(|&d| d <= tile) {
                continue;
            }
            if buffers[tile].has_seen(id) || !local_seen.insert(id) {
                continue;
            }
            if destination == node {
                newly.entry(id).or_insert(tile);
            }
        }
    }
    newly
}

/// An age worker's report: expiry events, counter deltas, and the tiles
/// whose buffers drained to empty (to clear from the frontier).
#[derive(Debug, Default)]
pub(crate) struct AgeOut {
    pub events: Vec<SimEvent>,
    pub expired: u64,
    pub purged: u64,
    pub emptied: Vec<u32>,
}

/// Runs the age phase (termination purge, then TTL decrement and GC)
/// over this shard's buffer chunk. RNG-free and event-order-identical
/// to the sequential engine's ascending-tile walk.
pub(crate) fn age_shard(
    round: u64,
    lo: usize,
    frontier: &TileSet,
    buffers: &mut [SendBuffer],
    pending_purge: &[MessageId],
    record_events: bool,
) -> AgeOut {
    let hi = lo + buffers.len();
    let mut out = AgeOut::default();
    for tile in frontier.iter_range(lo, hi) {
        let buffer = &mut buffers[tile - lo];
        for &id in pending_purge {
            if buffer.remove(id) {
                out.purged += 1;
            }
        }
        let before = buffer.len();
        {
            let events = &mut out.events;
            buffer.age_with(|id| {
                if record_events {
                    events.push(SimEvent::TtlExpiry {
                        round,
                        tile: NodeId(tile),
                        message: id,
                    });
                }
            });
        }
        out.expired += (before - buffer.len()) as u64;
        if buffer.is_empty() {
            out.emptied.push(tile as u32);
        }
    }
    out
}

/// Where a planned transmission ends up, as decided by the pre-pass.
#[derive(Debug)]
pub(crate) enum TxOutcome {
    /// Swallowed by a dead link.
    DeadLink,
    /// Swallowed by an active partition cut.
    Partitioned,
    /// Filed into the destination inbox.
    Deliver {
        /// XOR mask of an upset, captured by scrambling a zero buffer
        /// with the same draws the sequential engine would spend on the
        /// frame itself (both error models are XOR-linear).
        scramble: Option<Box<[u8]>>,
        /// Arrives one round late (sender slipped or link delayed).
        held: bool,
        /// Jumps to the front of the destination queue.
        front: bool,
        /// Chaos delay fired (event attribution).
        delayed: bool,
        /// Chaos reorder fired (event attribution).
        reordered: bool,
    },
}

/// One planned transmission onto a link.
#[derive(Debug)]
pub(crate) struct LinkTx {
    pub link: LinkId,
    pub outcome: TxOutcome,
}

/// What a planned egress service transmits.
#[derive(Debug)]
pub(crate) enum ServeSource {
    /// The message at `slot` in the tile's send buffer (workers encode
    /// it through their per-shard frame memo).
    Buffer { slot: u32 },
    /// A Byzantine forgery, already encoded by the pre-pass (forgery
    /// draws its corruption from the tile's adversary stream).
    Forge { id: MessageId, frame: Arc<[u8]> },
    /// A Byzantine replay of the tile's last legitimate frame.
    Replay { id: MessageId, frame: Arc<[u8]> },
}

/// One egress service: a source and its planned transmissions.
#[derive(Debug)]
pub(crate) struct ServeCmd {
    pub source: ServeSource,
    /// Index range into [`ForwardTape::txs`].
    pub txs: (u32, u32),
}

/// One forwarding tile's plan for the round.
#[derive(Debug)]
pub(crate) struct TilePlan {
    pub tile: u32,
    /// Whole-round clock slips to attribute (events only; the `held`
    /// consequence is already baked into each transmission's outcome).
    pub slips: u32,
    /// Index range into [`ForwardTape::serves`].
    pub serves: (u32, u32),
}

/// The forward phase's pre-drawn outcomes: a flat, reusable encoding of
/// every decision the sequential engine would have made, in the exact
/// order it would have drawn them.
#[derive(Debug, Default)]
pub(crate) struct ForwardTape {
    pub plans: Vec<TilePlan>,
    pub serves: Vec<ServeCmd>,
    pub txs: Vec<LinkTx>,
}

impl ForwardTape {
    pub fn clear(&mut self) {
        self.plans.clear();
        self.serves.clear();
        self.txs.clear();
    }
}

/// A frame bound for another tile's inbox, produced by a forward worker
/// and filed by the destination's file worker.
#[derive(Debug)]
pub(crate) struct EgressRecord {
    pub to: u32,
    pub frame: Frame,
    pub held: bool,
    pub front: bool,
}

/// A forward worker's report: events, egress records in emission order,
/// and (uniform mode only) the counter deltas the tape pre-pass would
/// otherwise have accumulated.
#[derive(Debug, Default)]
pub(crate) struct ForwardOut {
    pub events: Vec<SimEvent>,
    pub egress: Vec<EgressRecord>,
    pub transmissions: u64,
    pub bits: u64,
    pub crash_drops: u64,
    pub partition_drops: u64,
}

/// Executes this shard's slice of the [`ForwardTape`]: encodes frames
/// (per-shard memo), applies captured scramble masks copy-on-write, and
/// emits events/egress in the sequential engine's order. RNG-free; all
/// counters were accumulated by the pre-pass.
#[allow(clippy::too_many_arguments)] // the forward replay's split borrows, passed explicitly
pub(crate) fn forward_shard_tape(
    round: u64,
    lo: usize,
    hi: usize,
    tape: &ForwardTape,
    buffers: &[SendBuffer],
    topology: &Topology,
    codec: &WireCodec,
    record_events: bool,
) -> ForwardOut {
    let mut out = ForwardOut::default();
    let mut memo = FrameMemo::default();
    let first = tape.plans.partition_point(|p| (p.tile as usize) < lo);
    for plan in &tape.plans[first..] {
        let tile = plan.tile as usize;
        if tile >= hi {
            break;
        }
        let node = NodeId(tile);
        if record_events {
            for _ in 0..plan.slips {
                out.events.push(SimEvent::ClockSlip { round, tile: node });
            }
        }
        let msgs = buffers[tile].messages();
        for serve in &tape.serves[plan.serves.0 as usize..plan.serves.1 as usize] {
            let (id, frame) = match &serve.source {
                ServeSource::Buffer { slot } => {
                    let message = &msgs[*slot as usize];
                    let frame = memo.frame_for(codec, message);
                    if record_events {
                        out.events.push(SimEvent::Forwarded {
                            round,
                            tile: node,
                            message: message.id,
                        });
                    }
                    (message.id, frame)
                }
                ServeSource::Forge { id, frame } => {
                    if record_events {
                        out.events.push(SimEvent::ByzantineForge {
                            round,
                            tile: node,
                            message: *id,
                        });
                    }
                    (*id, Arc::clone(frame))
                }
                ServeSource::Replay { id, frame } => {
                    if record_events {
                        out.events
                            .push(SimEvent::ByzantineReplay { round, tile: node });
                    }
                    (*id, Arc::clone(frame))
                }
            };
            for tx in &tape.txs[serve.txs.0 as usize..serve.txs.1 as usize] {
                let to = topology.link(tx.link).to;
                if record_events {
                    out.events.push(SimEvent::FrameSent {
                        round,
                        from: node,
                        link: tx.link,
                        to,
                        message: id,
                    });
                }
                match &tx.outcome {
                    TxOutcome::DeadLink => {
                        if record_events {
                            out.events.push(SimEvent::CrashDrop {
                                round,
                                site: DropSite::Link(tx.link),
                            });
                        }
                    }
                    TxOutcome::Partitioned => {
                        if record_events {
                            out.events.push(SimEvent::PartitionDrop {
                                round,
                                link: tx.link,
                            });
                        }
                    }
                    TxOutcome::Deliver {
                        scramble,
                        held,
                        front,
                        delayed,
                        reordered,
                    } => {
                        let (bytes, scrambled) = match scramble {
                            Some(mask) => {
                                let mut copy = frame.to_vec();
                                for (byte, m) in copy.iter_mut().zip(mask.iter()) {
                                    *byte ^= m;
                                }
                                (Arc::<[u8]>::from(copy), true)
                            }
                            None => (Arc::clone(&frame), false),
                        };
                        if record_events {
                            if *delayed {
                                out.events.push(SimEvent::AdversarialDelay {
                                    round,
                                    link: tx.link,
                                });
                            }
                            if *reordered {
                                out.events.push(SimEvent::AdversarialReorder {
                                    round,
                                    link: tx.link,
                                });
                            }
                        }
                        out.egress.push(EgressRecord {
                            to: to.index() as u32,
                            frame: Frame {
                                bytes,
                                scrambled,
                                via: Some(tx.link),
                            },
                            held: *held,
                            front: *front,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Shared context for the tape-free uniform forward workers.
pub(crate) struct UniformForwardCtx<'a> {
    pub round: u64,
    /// Tiles with non-empty send buffers.
    pub frontier: &'a TileSet,
    pub buffers: &'a [SendBuffer],
    pub topology: &'a Topology,
    pub codec: &'a WireCodec,
    pub tiles_alive: &'a [bool],
    pub links_alive: &'a [bool],
    pub crash_schedule: &'a CrashSchedule,
    pub adversary: &'a AdversarialScenario,
    pub forward_overrides: &'a [Option<f64>],
    pub forward_probability: f64,
    pub record_events: bool,
}

/// The fully-deterministic forward fast path: every effective
/// forwarding probability is 0 or 1 and no upset/skew/chaos/Byzantine
/// draw is possible, so each worker recomputes its tiles' outcomes
/// locally with no pre-pass and no RNG. Counter deltas ride back in the
/// [`ForwardOut`].
pub(crate) fn forward_shard_uniform(
    ctx: &UniformForwardCtx<'_>,
    lo: usize,
    hi: usize,
) -> ForwardOut {
    let round = ctx.round;
    let mut out = ForwardOut::default();
    let mut memo = FrameMemo::default();
    for tile in ctx.frontier.iter_range(lo, hi) {
        let node = NodeId(tile);
        let msgs = ctx.buffers[tile].messages();
        if !ctx.tiles_alive[tile] || ctx.crash_schedule.tile_dead(tile, round) || msgs.is_empty() {
            continue;
        }
        let p = ctx.forward_overrides[tile].unwrap_or(ctx.forward_probability);
        for message in msgs {
            if ctx.record_events {
                out.events.push(SimEvent::Forwarded {
                    round,
                    tile: node,
                    message: message.id,
                });
            }
            if p < 1.0 {
                // Uniform mode guarantees p is exactly 0 here: the tile
                // is serviced (event above) but transmits nothing.
                continue;
            }
            let frame = memo.frame_for(ctx.codec, message);
            for &link_id in ctx.topology.out_links(node) {
                out.transmissions += 1;
                out.bits += (frame.len() * 8) as u64;
                let to = ctx.topology.link(link_id).to;
                if ctx.record_events {
                    out.events.push(SimEvent::FrameSent {
                        round,
                        from: node,
                        link: link_id,
                        to,
                        message: message.id,
                    });
                }
                if !ctx.links_alive[link_id.index()]
                    || ctx.crash_schedule.link_dead(link_id.index(), round)
                {
                    out.crash_drops += 1;
                    if ctx.record_events {
                        out.events.push(SimEvent::CrashDrop {
                            round,
                            site: DropSite::Link(link_id),
                        });
                    }
                    continue;
                }
                if ctx.adversary.partitions.link_cut(link_id.index(), round) {
                    out.partition_drops += 1;
                    if ctx.record_events {
                        out.events.push(SimEvent::PartitionDrop {
                            round,
                            link: link_id,
                        });
                    }
                    continue;
                }
                out.egress.push(EgressRecord {
                    to: to.index() as u32,
                    frame: Frame {
                        bytes: Arc::clone(&frame),
                        scrambled: false,
                        via: Some(link_id),
                    },
                    held: false,
                    front: false,
                });
            }
        }
    }
    out
}

/// A file worker's inflight bookkeeping deltas.
#[derive(Debug, Default)]
pub(crate) struct FileOut {
    pub next_frames: u64,
    pub later_frames: u64,
    /// Tiles whose `next` vector went from empty to non-empty.
    pub next_tiles: Vec<u32>,
    /// Tiles whose `later` vector went from empty to non-empty.
    pub later_tiles: Vec<u32>,
}

/// Files every egress record destined for tiles `[lo, lo + chunk)` into
/// this shard's inbox chunks, walking producer shards in ascending
/// order so each inbox receives its frames in exactly the sequential
/// engine's filing order.
pub(crate) fn file_shard(
    lo: usize,
    outs: &[ForwardOut],
    inbox_next: &mut [Vec<Frame>],
    inbox_later: &mut [Vec<Frame>],
) -> FileOut {
    let hi = lo + inbox_next.len();
    let mut out = FileOut::default();
    for produced in outs {
        for record in &produced.egress {
            let to = record.to as usize;
            if to < lo || to >= hi {
                continue;
            }
            let (inbox, frames, tiles) = if record.held {
                (
                    &mut inbox_later[to - lo],
                    &mut out.later_frames,
                    &mut out.later_tiles,
                )
            } else {
                (
                    &mut inbox_next[to - lo],
                    &mut out.next_frames,
                    &mut out.next_tiles,
                )
            };
            if inbox.is_empty() {
                tiles.push(record.to);
            }
            *frames += 1;
            if record.front {
                inbox.insert(0, record.frame.clone());
            } else {
                inbox.push(record.frame.clone());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_contiguously() {
        for n in [0usize, 1, 7, 64, 65, 4096] {
            for shards in [1usize, 2, 3, 7, 8, 16] {
                let ranges = shard_ranges(n, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges[shards - 1].1, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "ranges must be contiguous");
                }
            }
        }
    }

    #[test]
    fn shard_ranges_are_balanced() {
        let ranges = shard_ranges(4096, 8);
        for &(lo, hi) in &ranges {
            assert_eq!(hi - lo, 512);
        }
        let ranges = shard_ranges(10, 3);
        let sizes: Vec<usize> = ranges.iter().map(|&(lo, hi)| hi - lo).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4));
    }

    #[test]
    fn split_chunks_matches_ranges() {
        let mut data: Vec<u32> = (0..10).collect();
        let ranges = shard_ranges(10, 3);
        let chunks = split_chunks(&mut data, &ranges);
        assert_eq!(chunks.len(), 3);
        for (chunk, &(lo, hi)) in chunks.iter().zip(&ranges) {
            assert_eq!(chunk.len(), hi - lo);
            assert_eq!(chunk[0], lo as u32);
        }
    }
}
