//! The repo-specific invariant rules.
//!
//! Every rule encodes one determinism or hot-path invariant of the
//! simulator (see DESIGN.md §10). Rules are purely lexical: they match
//! significant-token patterns produced by [`crate::lexer`], scoped by
//! workspace-relative path, with findings suppressible only through the
//! reasoned [`crate::annotations`] grammar.

use crate::lexer::{Token, TokenKind};

/// One reported (or suppressed) rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (kebab-case, stable across releases).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
    /// Human explanation of the violation.
    pub message: String,
    /// True when a reasoned allow annotation covers this finding.
    pub allowed: bool,
    /// The annotation's reason, when allowed.
    pub reason: Option<String>,
}

/// Static description of a rule, used by `--explain` output and docs.
pub struct RuleInfo {
    pub name: &'static str,
    pub invariant: &'static str,
}

/// Every rule the engine knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "ambient-rng",
        invariant: "all randomness flows from the run seed: no thread_rng/from_entropy/OsRng \
                    and no ad-hoc seed arithmetic outside stochastic_noc::seed",
    },
    RuleInfo {
        name: "nondeterministic-time",
        invariant: "only noc-obs (crates/obs) may read wall-clock time (Instant::now/\
                    SystemTime::now); everything else times spans through noc_obs::Stopwatch, \
                    and simulation results use rounds as the only clock",
    },
    RuleInfo {
        name: "map-iteration-order",
        invariant: "crates that feed reports never declare HashMap/HashSet: iteration order \
                    would vary run-to-run; use BTreeMap/BTreeSet or annotate a never-iterated use",
    },
    RuleInfo {
        name: "hot-path-panic",
        invariant: "per-round engine paths (engine.rs, checkpoint.rs, send_buffer.rs, \
                    injector.rs) carry no unwrap/expect/panic!",
    },
    RuleInfo {
        name: "stdout-in-lib",
        invariant: "library crates never print to stdout/stderr; observability goes through \
                    the event sink",
    },
    RuleInfo {
        name: "unsafe-audit",
        invariant: "every crate root carries #![forbid(unsafe_code)] and no file uses unsafe",
    },
    RuleInfo {
        name: "checkpoint-coverage",
        invariant: "every named field of the engine state structs (Simulation, SendBuffer, \
                    ClockDomain, AdversarialScenario, FaultInjector) is referenced by \
                    checkpoint serialization code — checkpoint.rs or a checkpoint()/\
                    config_digest_value()/snapshot() body — or carries a reasoned allow \
                    naming it derived state; otherwise a resumed run silently diverges",
    },
    RuleInfo {
        name: "rng-draw-site",
        invariant: "RNG draws (gen/gen_range/gen_bool/next_u64/seed_from_u64/…) happen only \
                    in the sanctioned modules (seed.rs, engine.rs tape construction, \
                    reference.rs oracle, injector.rs, rng.rs) and never inside a closure \
                    passed to the shard fan-out — workers replay pre-drawn tapes",
    },
    RuleInfo {
        name: "event-coverage",
        invariant: "every SimEvent variant is matched by CounterSink (reconciling counters) \
                    and JsonlSink (trace serialization); a variant added without both \
                    consumers is an unaccounted decision point in the observability plane",
    },
    RuleInfo {
        name: "suppression-debt",
        invariant: "every noc-lint allow annotation suppresses at least one live finding; \
                    stale allows (fixed code, drifted anchor line, misspelled rule name) \
                    are findings themselves, and the full suppression inventory ships in \
                    the JSON artifact so CI can trend the debt",
    },
];

/// Crates whose output feeds figure tables and golden reports. The
/// faults crate qualifies since adversarial scenarios (partition cuts,
/// Byzantine tile sets) iterate their collections into seed-stream
/// derivation and digests.
const REPORT_CRATES: &[&str] = &[
    "crates/core/",
    "crates/apps/",
    "crates/experiments/",
    "crates/faults/",
];

/// Library crates that must stay silent on stdout/stderr.
const LIB_CRATES: &[&str] = &[
    "crates/core/",
    "crates/fabric/",
    "crates/faults/",
    "crates/crc/",
    "crates/energy/",
    "crates/bus/",
    "crates/dsp/",
    "crates/apps/",
    "crates/diversity/",
    "crates/obs/",
];

/// Files forming the per-round hot path.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/checkpoint.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/frontier.rs",
    "crates/core/src/send_buffer.rs",
    "crates/core/src/shard.rs",
    "crates/faults/src/injector.rs",
];

/// Identifiers that consult ambient entropy.
const AMBIENT_RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "ThreadRng"];

/// Arithmetic operators that make a seed expression "ad-hoc".
const SEED_OPS: &[&str] = &["+", "-", "*", "^", "%"];

/// Macros that write to stdout/stderr.
const PRINT_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg"];

/// Runs every applicable rule over one file's significant tokens.
///
/// `tokens` must already have `#[cfg(test)]`/`#[test]` items filtered
/// out; `all_tokens` is the unfiltered stream (crate-root attributes
/// live outside test items, but the unsafe-audit presence check wants
/// the full file).
pub fn check_file(rel_path: &str, tokens: &[Token], all_tokens: &[Token]) -> Vec<Finding> {
    let mut findings = Vec::new();
    ambient_rng(rel_path, tokens, &mut findings);
    nondeterministic_time(rel_path, tokens, &mut findings);
    map_iteration_order(rel_path, tokens, &mut findings);
    hot_path_panic(rel_path, tokens, &mut findings);
    stdout_in_lib(rel_path, tokens, &mut findings);
    unsafe_audit(rel_path, tokens, all_tokens, &mut findings);
    findings
}

fn finding(
    rule: &'static str,
    rel_path: &str,
    tok_line: usize,
    col: usize,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: rel_path.to_string(),
        line: tok_line,
        column: col,
        message,
        allowed: false,
        reason: None,
    }
}

fn is_ident(tok: &Token, text: &str) -> bool {
    tok.kind == TokenKind::Ident && tok.text == text
}

fn ambient_rng(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    // The seed module is the one sanctioned home of seed arithmetic.
    if rel_path == "crates/core/src/seed.rs" {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if AMBIENT_RNG_IDENTS.contains(&tok.text.as_str()) {
            findings.push(finding(
                "ambient-rng",
                rel_path,
                tok.line,
                tok.column,
                format!(
                    "`{}` consults ambient entropy; derive every stream from the run seed \
                     via stochastic_noc::seed",
                    tok.text
                ),
            ));
            continue;
        }
        // `rand::random` free function.
        if is_ident(tok, "rand")
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens.get(i + 2).is_some_and(|t| is_ident(t, "random"))
        {
            findings.push(finding(
                "ambient-rng",
                rel_path,
                tok.line,
                tok.column,
                "`rand::random` consults ambient entropy; derive every stream from the run seed"
                    .to_string(),
            ));
            continue;
        }
        // Ad-hoc seed arithmetic: `<seed ident> <op> [=] <number|ident>`.
        if tok.text.to_ascii_lowercase().contains("seed") {
            let Some(op) = tokens.get(i + 1) else {
                continue;
            };
            if op.kind != TokenKind::Punct || !SEED_OPS.contains(&op.text.as_str()) {
                continue;
            }
            let mut j = i + 2;
            if tokens.get(j).is_some_and(|t| t.text == "=") {
                j += 1; // compound assignment: `seed += k`
            }
            if tokens
                .get(j)
                .is_some_and(|t| matches!(t.kind, TokenKind::Number | TokenKind::Ident))
            {
                findings.push(finding(
                    "ambient-rng",
                    rel_path,
                    op.line,
                    op.column,
                    format!(
                        "ad-hoc seed arithmetic `{} {} …` correlates trial streams; use \
                         stochastic_noc::seed::derive_trial_seed / derive_labeled_seed",
                        tok.text, op.text
                    ),
                ));
            }
        }
    }
}

fn nondeterministic_time(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    // noc-obs wraps the one sanctioned clock read (`Stopwatch::start`);
    // every other crate — bench harness and linter included — times
    // wall-clock spans through that API.
    if rel_path.starts_with("crates/obs/") {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        let clock = (tok.kind == TokenKind::Ident
            && (tok.text == "Instant" || tok.text == "SystemTime"))
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens.get(i + 2).is_some_and(|t| is_ident(t, "now"));
        if clock {
            findings.push(finding(
                "nondeterministic-time",
                rel_path,
                tok.line,
                tok.column,
                format!(
                    "`{}::now()` reads the wall clock directly; time spans through \
                     noc_obs::Stopwatch (simulation results use the round counter)",
                    tok.text
                ),
            ));
        }
    }
}

fn map_iteration_order(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !REPORT_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return;
    }
    let mut in_use = false;
    for tok in tokens {
        if is_ident(tok, "use") {
            in_use = true;
        } else if tok.text == ";" {
            in_use = false;
        }
        // Import lines are moot without a use site, so only declarations
        // and expressions are flagged.
        if in_use {
            continue;
        }
        if tok.kind == TokenKind::Ident && (tok.text == "HashMap" || tok.text == "HashSet") {
            findings.push(finding(
                "map-iteration-order",
                rel_path,
                tok.line,
                tok.column,
                format!(
                    "`{}` iteration order is nondeterministic and this crate feeds reports; \
                     use BTree{} or annotate a provably never-iterated use",
                    tok.text,
                    if tok.text == "HashMap" { "Map" } else { "Set" },
                ),
            ));
        }
    }
}

fn hot_path_panic(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&rel_path) {
        return;
    }
    for tok in tokens {
        if tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "unwrap" | "expect" | "panic")
        {
            findings.push(finding(
                "hot-path-panic",
                rel_path,
                tok.line,
                tok.column,
                format!(
                    "`{}` in a per-round path can abort a trial mid-sweep; return a Result, \
                     make the state unrepresentable, or annotate a build-time-only site",
                    tok.text
                ),
            ));
        }
    }
}

fn stdout_in_lib(rel_path: &str, tokens: &[Token], findings: &mut Vec<Finding>) {
    if !LIB_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind == TokenKind::Ident
            && PRINT_MACROS.contains(&tok.text.as_str())
            && tokens.get(i + 1).is_some_and(|t| t.text == "!")
        {
            findings.push(finding(
                "stdout-in-lib",
                rel_path,
                tok.line,
                tok.column,
                format!(
                    "`{}!` writes to the process streams from a library crate; emit a \
                     SimEvent through the event sink instead",
                    tok.text
                ),
            ));
        }
    }
}

/// Is this workspace-relative path a crate root (lib, main, or bin)?
fn is_crate_root(rel_path: &str) -> bool {
    let parts: Vec<&str> = rel_path.split('/').collect();
    matches!(
        parts.as_slice(),
        ["src", "lib.rs" | "main.rs"]
            | ["src", "bin", _]
            | ["crates", _, "src", "lib.rs" | "main.rs"]
            | ["crates", _, "src", "bin", _]
    )
}

/// Does the token stream contain `forbid ( … unsafe_code … )`?
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    for (i, tok) in tokens.iter().enumerate() {
        if !is_ident(tok, "forbid") {
            continue;
        }
        if tokens.get(i + 1).is_none_or(|t| t.text != "(") {
            continue;
        }
        for t in &tokens[i + 2..] {
            if t.text == ")" {
                break;
            }
            if is_ident(t, "unsafe_code") {
                return true;
            }
        }
    }
    false
}

fn unsafe_audit(
    rel_path: &str,
    tokens: &[Token],
    all_tokens: &[Token],
    findings: &mut Vec<Finding>,
) {
    for tok in tokens {
        if is_ident(tok, "unsafe") {
            findings.push(finding(
                "unsafe-audit",
                rel_path,
                tok.line,
                tok.column,
                "`unsafe` has no place in the simulator workspace".to_string(),
            ));
        }
    }
    if is_crate_root(rel_path) && !has_forbid_unsafe(all_tokens) {
        findings.push(finding(
            "unsafe-audit",
            rel_path,
            1,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rel_path: &str, src: &str) -> Vec<Finding> {
        let lexed = lex(src);
        check_file(rel_path, &lexed.tokens, &lexed.tokens)
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn thread_rng_is_flagged_anywhere() {
        let f = run("crates/faults/src/rng.rs", "let r = rand::thread_rng();");
        assert_eq!(rules_of(&f), ["ambient-rng"]);
    }

    #[test]
    fn seed_arithmetic_is_flagged_outside_seed_module() {
        let f = run(
            "crates/core/src/tuning.rs",
            "let s = base_seed * 1_000_003 + trial;",
        );
        assert!(rules_of(&f).contains(&"ambient-rng"));
        let ok = run("crates/core/src/seed.rs", "let s = base_seed * 7;");
        assert!(ok.is_empty(), "seed module is exempt: {ok:?}");
    }

    #[test]
    fn seed_in_strings_and_comments_is_ignored() {
        let f = run(
            "crates/core/src/x.rs",
            "// seed * 1_000_003 was the bug\nlet s = \"seed + 1\";",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn instant_now_flagged_everywhere_except_obs() {
        let src = "let t = Instant::now();";
        assert_eq!(
            rules_of(&run("crates/experiments/src/runner.rs", src)),
            ["nondeterministic-time"]
        );
        // The bench harness must also go through noc_obs::Stopwatch
        // (crate-root audit still applies, so compare rule-by-rule).
        assert!(rules_of(&run("crates/bench/src/bin/perf_baseline.rs", src))
            .contains(&"nondeterministic-time"));
        // noc-obs wraps the sanctioned clock read.
        assert!(run("crates/obs/src/time.rs", src).is_empty());
        // Going through the Stopwatch API is clean anywhere.
        let wrapped = "let t = noc_obs::Stopwatch::start();";
        assert!(run("crates/experiments/src/runner.rs", wrapped).is_empty());
    }

    #[test]
    fn hashmap_flagged_only_in_report_crates_and_not_in_use_lines() {
        let decl = "struct S { m: HashMap<u32, u32> }";
        assert_eq!(
            rules_of(&run("crates/core/src/metrics.rs", decl)),
            ["map-iteration-order"]
        );
        assert!(run("crates/fabric/src/node.rs", decl).is_empty());
        let import = "use std::collections::HashMap;\n";
        assert!(run("crates/core/src/metrics.rs", import).is_empty());
    }

    #[test]
    fn hot_path_panics_flagged_only_in_hot_files() {
        let src = "let v = x.unwrap(); y.expect(\"msg\"); panic!(\"boom\");";
        assert_eq!(
            rules_of(&run("crates/core/src/engine.rs", src)),
            ["hot-path-panic", "hot-path-panic", "hot-path-panic"]
        );
        assert!(run("crates/core/src/metrics.rs", src).is_empty());
        // The checkpoint codec sits on the resume path and is held to
        // the same no-panic bar.
        assert_eq!(
            rules_of(&run("crates/core/src/checkpoint.rs", "let v = x.unwrap();")),
            ["hot-path-panic"]
        );
        // unwrap_or_else is a different identifier, never flagged.
        let soft = "let v = x.unwrap_or_else(Vec::new).unwrap_or(0);";
        assert!(run("crates/core/src/engine.rs", soft).is_empty());
    }

    #[test]
    fn println_flagged_in_lib_crates_only() {
        let src = "println!(\"x\"); eprintln!(\"y\");";
        assert_eq!(
            rules_of(&run("crates/fabric/src/port.rs", src)),
            ["stdout-in-lib", "stdout-in-lib"]
        );
        assert!(!rules_of(&run("crates/experiments/src/main.rs", src)).contains(&"stdout-in-lib"));
    }

    #[test]
    fn crate_roots_require_forbid_unsafe() {
        assert_eq!(
            rules_of(&run("crates/core/src/lib.rs", "pub mod engine;")),
            ["unsafe-audit"]
        );
        assert!(run(
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\npub mod engine;"
        )
        .is_empty());
        // Non-root files carry no attribute obligation.
        assert!(run("crates/core/src/engine.rs", "pub fn f() {}").is_empty());
    }

    #[test]
    fn unsafe_keyword_is_flagged_everywhere() {
        let f = run(
            "crates/dsp/src/x.rs",
            "unsafe { core::hint::unreachable_unchecked() }",
        );
        assert_eq!(rules_of(&f), ["unsafe-audit"]);
    }
}
