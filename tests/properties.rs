//! Cross-crate property-based tests on protocol invariants.

use ocsc::noc_fabric::{Grid2d, NodeId, Topology};
use ocsc::noc_faults::FaultModel;
use ocsc::stochastic_noc::{SimulationBuilder, StochasticConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flooding on a fault-free grid always delivers in exactly the
    /// Manhattan distance, for any source/destination pair.
    #[test]
    fn flooding_latency_equals_manhattan_distance(
        src in 0usize..16,
        dst in 0usize..16,
        seed in 0u64..1000,
    ) {
        prop_assume!(src != dst);
        let grid = Grid2d::new(4, 4);
        let distance = grid.manhattan_distance(NodeId(src), NodeId(dst)) as u64;
        let mut sim = SimulationBuilder::new(grid)
            .config(StochasticConfig::flooding(12).with_max_rounds(40))
            .seed(seed)
            .build();
        let id = sim.inject(NodeId(src), NodeId(dst), vec![1, 2, 3]);
        let report = sim.run();
        prop_assert_eq!(report.latency(id), Some(distance));
    }

    /// Packet conservation: transmissions equal detected upsets +
    /// undetected-or-clean receptions + losses, i.e. nothing is created
    /// or destroyed unaccounted. We check the weaker invariant that every
    /// loss counter is bounded by the transmission count.
    #[test]
    fn loss_counters_never_exceed_transmissions(
        p in 0.1f64..1.0,
        p_upset in 0.0f64..0.9,
        p_overflow in 0.0f64..0.9,
        seed in 0u64..500,
    ) {
        let model = FaultModel::builder()
            .p_upset(p_upset)
            .p_overflow(p_overflow)
            .build()
            .unwrap();
        let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
            .config(StochasticConfig::new(p, 10).unwrap().with_max_rounds(40))
            .fault_model(model)
            .seed(seed)
            .build();
        sim.inject(NodeId(0), NodeId(15), vec![9; 16]);
        let report = sim.run();
        prop_assert!(report.upsets_detected <= report.packets_sent);
        prop_assert!(report.overflow_drops <= report.packets_sent);
        prop_assert!(report.crash_drops <= report.packets_sent);
        // Bits are an exact multiple of the constant frame size.
        let frame_bits = 8 * (15 + 16 + 2) as u64;
        prop_assert_eq!(report.bits_sent.bits(), report.packets_sent * frame_bits);
    }

    /// Delivery is monotone in p on average: higher forwarding
    /// probability can only improve the chance that a fixed message
    /// arrives (checked statistically over a seed batch).
    #[test]
    fn delivery_rate_is_monotone_in_p(base_seed in 0u64..100) {
        let rate = |p: f64| {
            let mut ok = 0;
            for i in 0..8u64 {
                let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
                    .config(StochasticConfig::new(p, 8).unwrap().with_max_rounds(30))
                    .seed(base_seed * 1000 + i)
                    .build();
                let id = sim.inject(NodeId(0), NodeId(15), vec![1]);
                if sim.run().delivered(id) {
                    ok += 1;
                }
            }
            ok
        };
        let low = rate(0.15);
        let high = rate(0.9);
        prop_assert!(high >= low, "p=0.9 delivered {high} vs p=0.15 {low}");
    }

    /// The TTL bounds total traffic: a single broadcast can transmit at
    /// most ttl * links packets under flooding (each live message crosses
    /// each link at most once per round, and lives at most ttl rounds).
    #[test]
    fn ttl_bounds_flooding_traffic(ttl in 1u8..20, seed in 0u64..100) {
        let topology = Topology::grid(4, 4);
        let links = topology.link_count() as u64;
        let mut sim = SimulationBuilder::new(topology)
            .config(StochasticConfig::flooding(ttl).with_max_rounds(60))
            .seed(seed)
            .build();
        sim.inject(NodeId(5), NodeId(11), vec![7]);
        let report = sim.run();
        prop_assert!(
            report.packets_sent <= ttl as u64 * links,
            "{} packets > ttl {} x links {}",
            report.packets_sent, ttl, links
        );
    }
}
