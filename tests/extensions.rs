//! Integration tests for the extension features: tracing, tuning, the
//! reliable layer, torus fabrics and heterogeneous forwarding.

use ocsc::noc_apps::reliable::reliable_pair;
use ocsc::noc_fabric::{Direction, Grid2d, NodeId, Topology};
use ocsc::noc_faults::FaultModel;
use ocsc::stochastic_noc::tuning;
use ocsc::stochastic_noc::{SimulationBuilder, SpreadTrace, StochasticConfig};

#[test]
fn trace_tuning_and_engine_agree_on_flooding_latency() {
    // Three independent views of the same quantity: the flooding latency
    // between diameter-separated corners equals the Manhattan distance.
    let grid = Grid2d::new(4, 4);
    let (src, dst) = tuning::worst_case_pair(grid.topology());
    assert_eq!(grid.manhattan_distance(src, dst), 6);

    let point = tuning::evaluate(grid.topology(), src, dst, 1.0, 10, 5, 1);
    assert_eq!(point.mean_latency, Some(6.0));

    let mut sim = SimulationBuilder::new(grid)
        .config(StochasticConfig::flooding(10).with_max_rounds(40))
        .seed(1)
        .build();
    let id = sim.inject(src, dst, vec![1]);
    let trace = SpreadTrace::record(&mut sim, id, 40);
    assert_eq!(trace.delivery_round(), Some(6));
}

#[test]
fn reliable_transfer_works_over_a_torus() {
    let torus = Topology::torus(4, 4);
    let model = FaultModel::builder().p_upset(0.3).build().unwrap();
    let (sender, receiver, status, inbox) = reliable_pair(
        NodeId(0),
        NodeId(10),
        vec![b"wrapped".to_vec(), b"around".to_vec()],
        8,
    );
    let mut sim = SimulationBuilder::new(torus)
        .config(StochasticConfig::new(0.6, 10).unwrap().with_max_rounds(400))
        .fault_model(model)
        .with_ip(NodeId(0), sender)
        .with_ip(NodeId(10), receiver)
        .seed(4)
        .build();
    sim.run();
    assert_eq!(status.borrow().acked.len(), 2);
    assert_eq!(inbox.borrow()[0].as_deref(), Some(b"wrapped".as_slice()));
}

#[test]
fn torus_delivers_faster_than_grid_for_corner_pairs() {
    let latency = |topology: Topology| {
        let mut sum = 0u64;
        for seed in 0..5 {
            let n = topology.node_count();
            let mut sim = SimulationBuilder::new(topology.clone())
                .config(StochasticConfig::flooding(16).with_max_rounds(60))
                .seed(seed)
                .build();
            let id = sim.inject(NodeId(0), NodeId(n - 1), vec![1]);
            sum += sim.run().latency(id).expect("flooding delivers");
        }
        sum
    };
    let grid = latency(Topology::grid(6, 6));
    let torus = latency(Topology::torus(6, 6));
    assert!(torus < grid, "torus {torus} vs grid {grid}");
}

#[test]
fn heterogeneous_forwarding_shapes_the_spread() {
    // A "diversity" fabric: the left half gossips sparsely (p = 0.2),
    // the right half floods. The spread should cover the right half of
    // an 8-wide grid much sooner.
    let grid = Grid2d::new(8, 2);
    let mut builder = SimulationBuilder::new(grid.clone())
        .config(StochasticConfig::new(0.2, 20).unwrap().with_max_rounds(60))
        .seed(6);
    for x in 4..8 {
        for y in 0..2 {
            builder = builder.forward_probability_at(grid.node_at(x, y), 1.0);
        }
    }
    let mut sim = builder.build();
    // Source sits on the boundary of the flooding region.
    let id = sim.inject(grid.node_at(4, 0), grid.node_at(0, 1), vec![1]);
    // The farthest right-half tile (7,1) is 4 hops away; one extra step
    // because a hop-d tile is informed during round d.
    for _ in 0..5 {
        sim.step();
    }
    let informed_right = (4..8)
        .flat_map(|x| (0..2).map(move |y| (x, y)))
        .filter(|&(x, y)| sim.node_informed(grid.node_at(x, y), id))
        .count();
    let informed_left = (0..4)
        .flat_map(|x| (0..2).map(move |y| (x, y)))
        .filter(|&(x, y)| sim.node_informed(grid.node_at(x, y), id))
        .count();
    assert_eq!(informed_right, 8, "the flooding half saturates in 5 rounds");
    assert!(informed_left < 8, "the sparse half lags");
}

#[test]
fn port_directions_match_engine_neighbourhoods() {
    // Sanity across crates: the fabric's port geometry agrees with who
    // the engine actually delivers to in one flooding hop.
    let grid = Grid2d::new(3, 3);
    let center = grid.node_at(1, 1);
    let mut sim = SimulationBuilder::new(grid.clone())
        .config(StochasticConfig::flooding(4).with_max_rounds(10))
        .seed(7)
        .build();
    let id = sim.inject(center, grid.node_at(0, 0), vec![1]);
    sim.step();
    sim.step();
    for direction in Direction::ALL {
        let link = grid
            .link_towards(center, direction)
            .expect("center tile has all ports");
        let neighbour = grid.topology().link(link).to;
        assert!(
            sim.node_informed(neighbour, id),
            "neighbour to the {direction} missed the first hop"
        );
    }
}
