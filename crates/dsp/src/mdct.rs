//! The modified discrete cosine transform (MDCT) — the lapped transform
//! at the heart of the MP3-style encoder pipeline (Figure 4-7's "MDCT"
//! module).
//!
//! A frame of `N` windowed samples maps to `N/2` coefficients; with 50%
//! overlap and a Princen–Bradley window (e.g. [`crate::sine_window`]),
//! overlap-adding consecutive inverse transforms reconstructs the signal
//! exactly (time-domain alias cancellation).

use crate::window::sine_window;

/// Forward MDCT of one `N`-sample frame into `N/2` coefficients.
///
/// `X[k] = Σ_{n=0}^{N−1} x[n] · cos(π/M · (n + 0.5 + M/2)(k + 0.5))`,
/// with `M = N/2`. The caller is responsible for windowing `x` first.
///
/// # Panics
///
/// Panics if the frame length is zero or odd.
///
/// # Examples
///
/// ```
/// use noc_dsp::mdct;
///
/// let frame: Vec<f64> = (0..16).map(|n| (n as f64 * 0.4).sin()).collect();
/// let coeffs = mdct(&frame);
/// assert_eq!(coeffs.len(), 8);
/// ```
pub fn mdct(frame: &[f64]) -> Vec<f64> {
    let n = frame.len();
    assert!(
        n > 0 && n.is_multiple_of(2),
        "mdct frame length must be positive and even"
    );
    let m = n / 2;
    let mut out = Vec::with_capacity(m);
    for k in 0..m {
        let mut acc = 0.0;
        for (j, &x) in frame.iter().enumerate() {
            let angle = std::f64::consts::PI / m as f64
                * (j as f64 + 0.5 + m as f64 / 2.0)
                * (k as f64 + 0.5);
            acc += x * angle.cos();
        }
        out.push(acc);
    }
    out
}

/// Inverse MDCT of `M` coefficients back into `2M` (aliased) samples.
///
/// `y[n] = (2/M) Σ_{k=0}^{M−1} X[k] · cos(π/M (n + 0.5 + M/2)(k + 0.5))`.
/// The output contains time-domain aliasing that cancels under windowed
/// 50% overlap-add.
///
/// # Panics
///
/// Panics if `coeffs` is empty.
pub fn imdct(coeffs: &[f64]) -> Vec<f64> {
    let m = coeffs.len();
    assert!(m > 0, "imdct of an empty coefficient set");
    let n = 2 * m;
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let mut acc = 0.0;
        for (k, &c) in coeffs.iter().enumerate() {
            let angle = std::f64::consts::PI / m as f64
                * (j as f64 + 0.5 + m as f64 / 2.0)
                * (k as f64 + 0.5);
            acc += c * angle.cos();
        }
        out.push(acc * 2.0 / m as f64);
    }
    out
}

/// A windowed, overlapped MDCT analysis/synthesis engine for streaming
/// frames (the granule pipeline of the encoder).
///
/// Feed `hop = N/2` new samples per call to [`MdctFrame::analyze`]; each
/// call produces `N/2` coefficients. [`MdctFrame::synthesize`] is the
/// matching overlap-add decoder; after the one-frame algorithmic delay the
/// output reproduces the input exactly.
///
/// # Examples
///
/// ```
/// use noc_dsp::MdctFrame;
///
/// let mut analysis = MdctFrame::new(16);
/// let mut synthesis = MdctFrame::new(16);
/// let hop: Vec<f64> = (0..8).map(|n| (n as f64 * 0.3).sin()).collect();
/// let coeffs = analysis.analyze(&hop);
/// let _audio = synthesis.synthesize(&coeffs);
/// ```
#[derive(Debug, Clone)]
pub struct MdctFrame {
    frame_len: usize,
    window: Vec<f64>,
    history: Vec<f64>,
    overlap: Vec<f64>,
}

impl MdctFrame {
    /// Creates an engine with frame length `n` (even, ≥ 4); the hop size
    /// is `n/2`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is odd or below 4.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_multiple_of(2),
            "frame length must be even and at least 4"
        );
        Self {
            frame_len: n,
            window: sine_window(n),
            history: vec![0.0; n / 2],
            overlap: vec![0.0; n / 2],
        }
    }

    /// Hop size (`N/2` samples per frame).
    pub fn hop(&self) -> usize {
        self.frame_len / 2
    }

    /// Consumes `hop()` new samples, returns `hop()` MDCT coefficients of
    /// the windowed frame `[previous hop | new hop]`.
    ///
    /// # Panics
    ///
    /// Panics if `samples.len() != hop()`.
    pub fn analyze(&mut self, samples: &[f64]) -> Vec<f64> {
        let m = self.hop();
        assert_eq!(
            samples.len(),
            m,
            "analyze expects exactly one hop of samples"
        );
        let mut frame = Vec::with_capacity(self.frame_len);
        frame.extend_from_slice(&self.history);
        frame.extend_from_slice(samples);
        for (x, w) in frame.iter_mut().zip(&self.window) {
            *x *= w;
        }
        self.history.copy_from_slice(samples);
        mdct(&frame)
    }

    /// Consumes `hop()` coefficients, returns `hop()` reconstructed
    /// samples (delayed by one hop relative to the analysis input).
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != hop()`.
    pub fn synthesize(&mut self, coeffs: &[f64]) -> Vec<f64> {
        let m = self.hop();
        assert_eq!(
            coeffs.len(),
            m,
            "synthesize expects exactly one hop of coefficients"
        );
        let mut frame = imdct(coeffs);
        for (x, w) in frame.iter_mut().zip(&self.window) {
            *x *= w;
        }
        let out: Vec<f64> = (0..m).map(|j| self.overlap[j] + frame[j]).collect();
        self.overlap.copy_from_slice(&frame[m..]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coefficient_count_is_half_the_frame() {
        let frame = vec![1.0; 32];
        assert_eq!(mdct(&frame).len(), 16);
        assert_eq!(imdct(&mdct(&frame)).len(), 32);
    }

    #[test]
    fn perfect_reconstruction_via_overlap_add() {
        let n = 32;
        let hop = n / 2;
        let signal: Vec<f64> = (0..hop * 8)
            .map(|j| (j as f64 * 0.21).sin() + 0.5 * (j as f64 * 0.53).cos())
            .collect();
        let mut analysis = MdctFrame::new(n);
        let mut synthesis = MdctFrame::new(n);
        let mut reconstructed = Vec::new();
        for chunk in signal.chunks(hop) {
            let coeffs = analysis.analyze(chunk);
            reconstructed.extend(synthesis.synthesize(&coeffs));
        }
        // Total pipeline delay is one hop: output[j + hop] == input[j].
        for j in 0..signal.len() - hop {
            assert!(
                (reconstructed[j + hop] - signal[j]).abs() < 1e-9,
                "sample {j}: {} vs {}",
                reconstructed[j + hop],
                signal[j]
            );
        }
    }

    #[test]
    fn dc_energy_concentrates_in_low_coefficients() {
        let n = 64;
        let frame: Vec<f64> = sine_window(n); // smooth, low-frequency
        let coeffs = mdct(&frame);
        let low: f64 = coeffs[..4].iter().map(|c| c * c).sum();
        let high: f64 = coeffs[n / 4..].iter().map(|c| c * c).sum();
        assert!(low > 100.0 * high, "low {low} vs high {high}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_frame_panics() {
        let _ = mdct(&[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_imdct_panics() {
        let _ = imdct(&[]);
    }

    #[test]
    #[should_panic(expected = "exactly one hop")]
    fn wrong_hop_size_panics() {
        let mut eng = MdctFrame::new(16);
        let _ = eng.analyze(&[0.0; 5]);
    }
}
