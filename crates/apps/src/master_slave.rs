//! The Master–Slave π computation of §4.1.1.
//!
//! Equation 4 of the paper estimates π by numerical integration of
//! `4/(1+x²)` over `[0, 1]`; the sum is split into `K` partial sums
//! computed by slave IPs scattered over the NoC. The master broadcasts
//! work items, collects the partial results and assembles π. Each slave
//! may be *replicated* on several tiles: replicas produce identical
//! results, so the master simply takes whichever copy arrives first —
//! this is the paper's recipe for tolerating tile crash failures in the
//! computation itself.

use std::cell::RefCell;
use std::rc::Rc;

use noc_fabric::{Grid2d, IpContext, IpCore, NodeId};
use noc_faults::{CrashSchedule, FaultModel};
use stochastic_noc::{SimulationBuilder, SimulationReport, StochasticConfig};

use crate::wire::{put_f64, put_u32, PayloadReader};

const TAG_WORK: u8 = 1;
const TAG_RESULT: u8 = 2;

/// One term of Equation 4's midpoint sum.
fn pi_term(i: u64, n: u64) -> f64 {
    let x = (i as f64 + 0.5) / n as f64;
    4.0 / (1.0 + x * x) / n as f64
}

/// Reference value of the partial sum over `[lo, hi)`.
fn partial_sum(lo: u64, hi: u64, n: u64) -> f64 {
    (lo..hi).map(|i| pi_term(i, n)).sum()
}

/// Parameters of a Master–Slave run.
#[derive(Debug, Clone)]
pub struct MasterSlaveParams {
    /// Grid side (the paper uses 5×5).
    pub grid_side: usize,
    /// Number of distinct partial sums (slave roles).
    pub slaves: usize,
    /// Replication factor: how many tiles compute each partial sum.
    pub replication: usize,
    /// Total integration terms in Equation 4.
    pub terms: u64,
    /// Protocol configuration.
    pub config: StochasticConfig,
    /// Fault model.
    pub fault_model: FaultModel,
    /// Explicit crash events.
    pub crash_schedule: CrashSchedule,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MasterSlaveParams {
    /// The paper's setup: a 5×5 grid, eight slaves, no replication,
    /// fault-free, flooding-strength gossip at `p = 0.5`.
    fn default() -> Self {
        Self {
            grid_side: 5,
            slaves: 8,
            replication: 1,
            terms: 100_000,
            config: StochasticConfig::default().with_max_rounds(300),
            fault_model: FaultModel::none(),
            crash_schedule: CrashSchedule::new(),
            seed: 0,
        }
    }
}

/// Outcome of a Master–Slave run.
#[derive(Debug, Clone)]
pub struct MasterSlaveOutcome {
    /// Did the master collect every partial sum within the round budget?
    pub completed: bool,
    /// Round at which the master finished, if it did.
    pub completion_round: Option<u64>,
    /// The assembled π estimate, if complete.
    pub pi_estimate: Option<f64>,
    /// Partial sums collected (indexed by slave role).
    pub partials_collected: usize,
    /// Full engine report (latency, packets, energy, fault counters).
    pub report: SimulationReport,
}

/// The master IP: scatters work, gathers partial sums.
struct MasterIp {
    slaves: usize,
    terms: u64,
    /// Tiles hosting each slave role (role -> replica tiles).
    assignments: Vec<Vec<NodeId>>,
    partials: Vec<Option<f64>>,
    state: Rc<RefCell<MasterState>>,
}

#[derive(Debug, Default)]
struct MasterState {
    completion_round: Option<u64>,
    pi: Option<f64>,
    collected: usize,
}

impl IpCore for MasterIp {
    fn on_start(&mut self, ctx: &mut IpContext) {
        // Scatter: one work item per replica tile.
        let per_slave = self.terms / self.slaves as u64;
        for (role, tiles) in self.assignments.iter().enumerate() {
            let lo = role as u64 * per_slave;
            let hi = if role + 1 == self.slaves {
                self.terms
            } else {
                lo + per_slave
            };
            for &tile in tiles {
                let mut payload = vec![TAG_WORK];
                put_u32(&mut payload, role as u32);
                put_u32(&mut payload, lo as u32);
                put_u32(&mut payload, hi as u32);
                put_u32(&mut payload, self.terms as u32);
                ctx.send(tile, payload);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_RESULT) {
            return; // not a result (or corrupt): ignore
        }
        let Some(role) = r.u32() else { return };
        let Some(value) = r.f64() else { return };
        let role = role as usize;
        if role >= self.slaves || self.partials[role].is_some() {
            return; // out of range (corrupt) or already satisfied
        }
        self.partials[role] = Some(value);
        let mut state = self.state.borrow_mut();
        state.collected += 1;
        if state.collected == self.slaves {
            state.pi = Some(self.partials.iter().map(|p| p.expect("all set")).sum());
            state.completion_round = Some(ctx.round());
        }
    }

    fn is_done(&self) -> bool {
        self.state.borrow().pi.is_some()
    }

    fn name(&self) -> &str {
        "master"
    }
}

/// A slave IP: waits for a work item, computes its partial sum, replies.
struct SlaveIp {
    master: NodeId,
    done: bool,
}

impl IpCore for SlaveIp {
    fn on_message(&mut self, ctx: &mut IpContext, _from: NodeId, payload: &[u8]) {
        if self.done {
            return;
        }
        let mut r = PayloadReader::new(payload);
        if r.u8() != Some(TAG_WORK) {
            return;
        }
        let (Some(role), Some(lo), Some(hi), Some(terms)) = (r.u32(), r.u32(), r.u32(), r.u32())
        else {
            return;
        };
        if lo > hi || hi as u64 > terms as u64 || terms == 0 {
            return; // corrupt work item
        }
        let value = partial_sum(lo as u64, hi as u64, terms as u64);
        let mut payload = vec![TAG_RESULT];
        put_u32(&mut payload, role);
        put_f64(&mut payload, value);
        ctx.send(self.master, payload);
        self.done = true;
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn name(&self) -> &str {
        "slave"
    }
}

/// A configured Master–Slave application, ready to run.
///
/// # Examples
///
/// ```
/// use noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
///
/// let params = MasterSlaveParams {
///     replication: 2,
///     ..MasterSlaveParams::default()
/// };
/// let outcome = MasterSlaveApp::new(params).run();
/// assert!(outcome.completed);
/// ```
#[derive(Debug)]
pub struct MasterSlaveApp {
    params: MasterSlaveParams,
}

impl MasterSlaveApp {
    /// Creates the application.
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot host master + `slaves × replication`
    /// tiles, or any count is zero.
    pub fn new(params: MasterSlaveParams) -> Self {
        let tiles = params.grid_side * params.grid_side;
        assert!(
            params.slaves > 0 && params.replication > 0,
            "counts must be positive"
        );
        assert!(
            params.terms >= params.slaves as u64,
            "fewer terms than slaves"
        );
        assert!(
            params.slaves * params.replication < tiles,
            "{} tiles cannot host 1 master + {}x{} slaves",
            tiles,
            params.slaves,
            params.replication
        );
        Self { params }
    }

    /// The tile hosting the master (grid center).
    pub fn master_tile(&self) -> NodeId {
        let side = self.params.grid_side;
        NodeId((side / 2) * side + side / 2)
    }

    /// The replica tiles of each slave role, assigned round-robin over
    /// the remaining tiles.
    pub fn slave_assignments(&self) -> Vec<Vec<NodeId>> {
        let master = self.master_tile();
        let tiles = self.params.grid_side * self.params.grid_side;
        let free: Vec<NodeId> = (0..tiles).map(NodeId).filter(|&n| n != master).collect();
        // Spread replicas: interleave so replicas of one role land apart.
        let mut assignments = vec![Vec::new(); self.params.slaves];
        for rep in 0..self.params.replication {
            for (role, assignment) in assignments.iter_mut().enumerate() {
                let idx = (rep * self.params.slaves + role) % free.len();
                assignment.push(free[idx]);
            }
        }
        // Ensure distinct tiles across all assignments.
        let mut used = std::collections::BTreeSet::new();
        let mut cursor = 0;
        for roles in &mut assignments {
            for tile in roles.iter_mut() {
                if !used.insert(*tile) {
                    while used.contains(&free[cursor]) {
                        cursor += 1;
                    }
                    *tile = free[cursor];
                    used.insert(*tile);
                }
            }
        }
        assignments
    }

    /// Runs the application to completion or round budget.
    pub fn run(self) -> MasterSlaveOutcome {
        let master = self.master_tile();
        let assignments = self.slave_assignments();
        let state = Rc::new(RefCell::new(MasterState::default()));
        let p = &self.params;

        let mut builder = SimulationBuilder::new(Grid2d::new(p.grid_side, p.grid_side))
            .config(p.config)
            .fault_model(p.fault_model)
            .crash_schedule(p.crash_schedule.clone())
            .seed(p.seed)
            .with_ip(
                master,
                Box::new(MasterIp {
                    slaves: p.slaves,
                    terms: p.terms,
                    assignments: assignments.clone(),
                    partials: vec![None; p.slaves],
                    state: Rc::clone(&state),
                }),
            );
        for tiles in &assignments {
            for &tile in tiles {
                builder = builder.with_ip(
                    tile,
                    Box::new(SlaveIp {
                        master,
                        done: false,
                    }),
                );
            }
        }
        let mut sim = builder.build();
        let report = sim.run();
        let state = state.borrow();
        MasterSlaveOutcome {
            completed: state.pi.is_some(),
            completion_round: state.completion_round,
            pi_estimate: state.pi,
            partials_collected: state.collected,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_4_converges_to_pi() {
        // Pure math check, no network.
        let n = 1_000_000;
        let pi = partial_sum(0, n, n);
        assert!((pi - std::f64::consts::PI).abs() < 1e-9, "got {pi}");
    }

    #[test]
    fn partial_sums_compose() {
        let n = 10_000;
        let whole = partial_sum(0, n, n);
        let split = partial_sum(0, 3000, n) + partial_sum(3000, 7000, n) + partial_sum(7000, n, n);
        assert!((whole - split).abs() < 1e-12);
    }

    #[test]
    fn fault_free_run_completes_and_estimates_pi() {
        let outcome = MasterSlaveApp::new(MasterSlaveParams::default()).run();
        assert!(outcome.completed);
        let pi = outcome.pi_estimate.unwrap();
        assert!((pi - std::f64::consts::PI).abs() < 1e-6, "pi = {pi}");
        assert!(
            outcome.completion_round.unwrap() >= 2,
            "scatter+compute+gather"
        );
        assert_eq!(outcome.partials_collected, 8);
    }

    #[test]
    fn flooding_is_not_slower_than_sparse_gossip() {
        let run = |p: f64| {
            let params = MasterSlaveParams {
                config: StochasticConfig::new(p, 16).unwrap().with_max_rounds(300),
                seed: 5,
                ..MasterSlaveParams::default()
            };
            MasterSlaveApp::new(params).run()
        };
        let flood = run(1.0);
        let sparse = run(0.25);
        assert!(flood.completed);
        if sparse.completed {
            assert!(
                flood.completion_round.unwrap() <= sparse.completion_round.unwrap(),
                "flooding {} vs p=0.25 {}",
                flood.completion_round.unwrap(),
                sparse.completion_round.unwrap()
            );
        }
    }

    #[test]
    fn replication_tolerates_a_dead_slave() {
        // Kill one replica tile of role 0 and verify the duplicate saves
        // the computation.
        let params = MasterSlaveParams {
            replication: 2,
            ..MasterSlaveParams::default()
        };
        let app = MasterSlaveApp::new(params);
        let victim = app.slave_assignments()[0][0];
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(victim.index(), 0);
        let params = MasterSlaveParams {
            replication: 2,
            crash_schedule: schedule,
            ..MasterSlaveParams::default()
        };
        let outcome = MasterSlaveApp::new(params).run();
        assert!(outcome.completed, "replica should cover the dead slave");
        assert!((outcome.pi_estimate.unwrap() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn unreplicated_dead_slave_fails_the_run() {
        let app = MasterSlaveApp::new(MasterSlaveParams::default());
        let victim = app.slave_assignments()[0][0];
        let mut schedule = CrashSchedule::new();
        schedule.kill_tile(victim.index(), 0);
        let params = MasterSlaveParams {
            crash_schedule: schedule,
            config: StochasticConfig::default().with_max_rounds(80),
            ..MasterSlaveParams::default()
        };
        let outcome = MasterSlaveApp::new(params).run();
        assert!(!outcome.completed);
        assert_eq!(outcome.partials_collected, 7);
    }

    #[test]
    fn survives_moderate_upsets() {
        let params = MasterSlaveParams {
            fault_model: FaultModel::builder().p_upset(0.3).build().unwrap(),
            config: StochasticConfig::new(0.75, 20)
                .unwrap()
                .with_max_rounds(400),
            seed: 11,
            ..MasterSlaveParams::default()
        };
        let outcome = MasterSlaveApp::new(params).run();
        assert!(outcome.completed, "30% upsets should be survivable");
        assert!((outcome.pi_estimate.unwrap() - std::f64::consts::PI).abs() < 1e-6);
    }

    #[test]
    fn assignments_are_distinct_tiles() {
        let app = MasterSlaveApp::new(MasterSlaveParams {
            replication: 2,
            ..MasterSlaveParams::default()
        });
        let mut all: Vec<NodeId> = app.slave_assignments().into_iter().flatten().collect();
        all.push(app.master_tile());
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "tiles must not be shared");
    }

    #[test]
    #[should_panic(expected = "cannot host")]
    fn oversubscribed_grid_panics() {
        let _ = MasterSlaveApp::new(MasterSlaveParams {
            grid_side: 3,
            slaves: 8,
            replication: 2,
            ..MasterSlaveParams::default()
        });
    }
}
