//! Sweep the whole fault-parameter space of Chapter 2 against a single
//! broadcast and print the delivery ratio per grid point — a miniature
//! of the paper's exhaustive exploration.
//!
//! ```text
//! cargo run --release --example fault_sweep
//! ```

use ocsc::noc_fabric::{Grid2d, NodeId};
use ocsc::noc_faults::{linspace, FaultModel, FaultSweep};
use ocsc::stochastic_noc::{SimulationBuilder, StochasticConfig};

fn main() {
    let sweep = FaultSweep::new(FaultModel::none())
        .upset(linspace(0.0, 0.8, 5))
        .overflow(linspace(0.0, 0.8, 5));
    let seeds = 5;

    println!("delivery ratio of one broadcast (4x4 grid, p=0.5, ttl=16)");
    println!("p_upset\tp_overflow\tdelivered\tavg latency [rounds]");
    for model in sweep.models() {
        let mut delivered = 0u32;
        let mut latency_sum = 0u64;
        for seed in 0..seeds {
            let mut sim = SimulationBuilder::new(Grid2d::new(4, 4))
                .config(
                    StochasticConfig::new(0.5, 16)
                        .expect("valid config")
                        .with_max_rounds(100),
                )
                .fault_model(model)
                .seed(seed)
                .build();
            let id = sim.inject(NodeId(0), NodeId(15), b"sweep".to_vec());
            let report = sim.run();
            if let Some(latency) = report.latency(id) {
                delivered += 1;
                latency_sum += latency;
            }
        }
        let latency = if delivered > 0 {
            format!("{:.1}", latency_sum as f64 / delivered as f64)
        } else {
            "-".to_string()
        };
        println!(
            "{:.2}\t{:.2}\t{}/{}\t{}",
            model.p_upset, model.p_overflow, delivered, seeds, latency
        );
    }
}
