//! Offline stand-in for `criterion`.
//!
//! Implements the API subset the workspace's bench targets use —
//! [`Criterion::benchmark_group`], `sample_size`, `throughput`,
//! `bench_function`, [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`] and [`criterion_main!`] — measuring wall-clock
//! time with `std::time::Instant` and printing one line per benchmark.
//! There is no statistical analysis, plotting or comparison against
//! saved baselines; the numbers are mean ns/iteration over an
//! adaptively sized batch.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for [`BenchmarkGroup::throughput`] reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measurement driver handed to each benchmark closure.
pub struct Bencher {
    /// Total time spent in the measured closure.
    elapsed: Duration,
    /// Iterations executed during measurement.
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running enough iterations for a stable mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also provides a first cost estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Aim for ~100 ms of measurement, capped to keep huge
        // per-iteration benches from stalling the suite.
        let target = Duration::from_millis(100);
        let iters = (target.as_nanos() / estimate.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes batches itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        let mean_ns = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean_ns > 0.0 => {
                format!("  ({:.1} MiB/s)", bytes as f64 / mean_ns * 953.674_316)
            }
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean_ns * 1e9)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: {}  [{} iterations]{}",
            self.name,
            id,
            format_time(mean_ns),
            bencher.iterations,
            rate
        );
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: u64,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function("run", f);
        self
    }
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.finish();
        assert_eq!(c.benchmarks_run, 1);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("us"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(2e9).ends_with(" s"));
    }
}
