//! True positive: hash-ordered map declared in a report-feeding crate.

use std::collections::HashMap;

pub struct Tally {
    pub counts: HashMap<u32, u64>,
}
