//! Figure 4-4 / 4-5 benches: the Master-Slave and FFT2 case studies at
//! flooding and p=0.5.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_apps::fft2d::{Fft2dApp, Fft2dParams};
use noc_apps::master_slave::{MasterSlaveApp, MasterSlaveParams};
use std::hint::black_box;
use stochastic_noc::StochasticConfig;

fn bench_case_studies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4-4 case studies");
    group.sample_size(10);

    for p in [1.0, 0.5] {
        group.bench_function(format!("master-slave 5x5 p={p}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let params = MasterSlaveParams {
                    config: StochasticConfig::new(p, 16).unwrap().with_max_rounds(150),
                    terms: 10_000,
                    seed,
                    ..MasterSlaveParams::default()
                };
                black_box(MasterSlaveApp::new(params).run().completed)
            })
        });
        group.bench_function(format!("fft2 4x4 p={p}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let params = Fft2dParams {
                    config: StochasticConfig::new(p, 16).unwrap().with_max_rounds(150),
                    seed,
                    ..Fft2dParams::default()
                };
                black_box(Fft2dApp::new(params).run().completed)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_case_studies);
criterion_main!(benches);
