//! **Figure 3-3** — the producer–consumer example on a 4×4 grid: round
//! by round, which tiles have become aware of the message and when the
//! consumer receives it.
//!
//! When the CLI installs a trace path (`--trace-events PATH`), trial 0
//! of this figure streams its full event log there as JSON Lines.

use std::fs::File;
use std::io::BufWriter;

use noc_fabric::{Grid2d, NodeId};
use stochastic_noc::events::{EventSink, JsonlSink};
use stochastic_noc::{Simulation, SimulationBuilder, StochasticConfig};

use crate::{Scale, TrialRunner};

/// Trace of one producer–consumer gossip spread.
#[derive(Debug, Clone)]
pub struct ProducerConsumerTrace {
    /// Informed tile count after each round (index = round).
    pub informed_per_round: Vec<usize>,
    /// Round at which the consumer first received the message, if any.
    pub delivery_round: Option<u64>,
    /// Total packet transmissions over the whole spread.
    pub packets_sent: u64,
}

fn builder(seed: u64) -> SimulationBuilder {
    let mut builder = SimulationBuilder::new(Grid2d::new(4, 4))
        .config(
            StochasticConfig::new(0.5, 12)
                .expect("valid")
                .with_max_rounds(40),
        )
        .shards(crate::runner::default_shards())
        .seed(seed);
    if let Some(obs) = crate::runner::engine_obs() {
        builder = builder.obs(obs);
    }
    builder
}

/// Drives one trial to completion; generic over the installed sink so
/// the traced trial and the plain trials execute the identical schedule.
fn run_one<S: EventSink>(mut sim: Simulation<S>) -> (ProducerConsumerTrace, S) {
    let id = sim.inject(NodeId(5), NodeId(11), b"figure 3-3".to_vec());
    let mut informed = vec![sim.informed_count(id)];
    while !sim.is_complete() && sim.round() < 40 {
        sim.step();
        informed.push(sim.informed_count(id));
    }
    let report = sim.run(); // already done: only finalizes the report
    let trace = ProducerConsumerTrace {
        informed_per_round: informed,
        delivery_round: report.latency(id),
        packets_sent: report.packets_sent,
    };
    (trace, sim.into_sink())
}

/// Runs the producer (tile 6, 0-based 5) → consumer (tile 12, 0-based
/// 11) example at `p = 0.5` on a 4×4 grid.
pub fn run(scale: Scale) -> Vec<ProducerConsumerTrace> {
    let trace_to = crate::runner::trace_path();
    TrialRunner::for_figure("fig3-3", scale.repetitions()).run_indexed(|index, seed| {
        if let (Some(path), 0) = (&trace_to, index) {
            let file = File::create(path)
                .unwrap_or_else(|e| panic!("--trace-events: cannot create {path}: {e}"));
            let sim = builder(seed).build_with_sink(JsonlSink::new(BufWriter::new(file)));
            let (trace, sink) = run_one(sim);
            let events = sink.events_written();
            let _ = sink.into_inner(); // flushes
            eprintln!("[trace] fig3-3 trial 0: {events} events -> {path}");
            trace
        } else {
            run_one(builder(seed).build()).0
        }
    })
}

/// Prints the per-round awareness trace of each run.
pub fn print(traces: &[ProducerConsumerTrace]) {
    crate::stats::print_table_header(
        "Figure 3-3: producer (tile 6) -> consumer (tile 12), 4x4 grid, p=0.5",
        &[
            "run",
            "delivery round",
            "packets",
            "informed tiles per round",
        ],
    );
    for (i, t) in traces.iter().enumerate() {
        let spread: Vec<String> = t.informed_per_round.iter().map(|c| c.to_string()).collect();
        println!(
            "{}\t{}\t{}\t{}",
            i,
            t.delivery_round.map_or("-".to_string(), |r| r.to_string()),
            t.packets_sent,
            spread.join(",")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_is_reached_before_full_broadcast_usually() {
        let traces = run(Scale::Quick);
        let delivered = traces.iter().filter(|t| t.delivery_round.is_some()).count();
        assert!(delivered >= traces.len() - 1, "p=0.5 delivers reliably");
    }

    #[test]
    fn awareness_is_monotone() {
        for t in run(Scale::Quick) {
            assert!(t.informed_per_round.windows(2).all(|w| w[1] >= w[0]));
            assert_eq!(t.informed_per_round[0], 1, "only the producer at start");
        }
    }

    #[test]
    fn traced_trial_matches_untraced_output() {
        // The JSONL sink observes; it must not perturb the figure data.
        let _guard = crate::runner::GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = std::env::temp_dir().join("fig3_3_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        crate::runner::set_trace_path(Some(path.to_string_lossy().into_owned()));
        let traced = run(Scale::Quick);
        crate::runner::set_trace_path(None);
        let plain = run(Scale::Quick);

        assert_eq!(traced.len(), plain.len());
        for (a, b) in traced.iter().zip(&plain) {
            assert_eq!(a.informed_per_round, b.informed_per_round);
            assert_eq!(a.delivery_round, b.delivery_round);
            assert_eq!(a.packets_sent, b.packets_sent);
        }

        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "trace file has events");
        let rounds: Vec<u64> = text
            .lines()
            .map(|l| {
                assert!(l.starts_with("{\"event\":\"") && l.ends_with('}'), "{l}");
                let key = "\"round\":";
                let at = l.find(key).expect("every event carries a round") + key.len();
                l[at..]
                    .chars()
                    .take_while(char::is_ascii_digit)
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "round-monotone");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tracing_and_metrics_compose() {
        use std::sync::Arc;

        // `--trace-events` and `--metrics-out` together: the traced
        // trial still streams JSONL, the engines still record spans, and
        // the figure data stays byte-identical to the unobserved run.
        let _guard = crate::runner::GLOBAL_STATE_TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let plain = run(Scale::Quick);

        let dir = std::env::temp_dir().join("fig3_3_compose_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let registry = Arc::new(noc_obs::Metrics::new());
        crate::runner::install_metrics(Some(Arc::clone(&registry)));
        crate::runner::set_trace_path(Some(path.to_string_lossy().into_owned()));
        let observed = run(Scale::Quick);
        crate::runner::set_trace_path(None);
        crate::runner::install_metrics(None);

        assert_eq!(observed.len(), plain.len());
        for (a, b) in observed.iter().zip(&plain) {
            assert_eq!(a.informed_per_round, b.informed_per_round);
            assert_eq!(a.delivery_round, b.delivery_round);
            assert_eq!(a.packets_sent, b.packets_sent);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "trace stream written alongside metrics");
        std::fs::remove_file(&path).ok();

        let snap = registry.snapshot();
        let round_phase = snap
            .histograms
            .iter()
            .find(|h| {
                h.name == "engine_phase_seconds"
                    && h.labels == vec![("phase".to_string(), "round".to_string())]
            })
            .expect("sequential engines record whole-round spans");
        assert!(round_phase.count > 0);
        let trial = snap
            .histograms
            .iter()
            .find(|h| {
                h.name == "runner_trial_seconds"
                    && h.labels == vec![("figure".to_string(), "fig3-3".to_string())]
            })
            .expect("runner recorded trial wall time");
        assert!(trial.count > 0);
    }
}
