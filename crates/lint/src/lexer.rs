//! A comment/string/raw-string-aware Rust lexer.
//!
//! The rule engine must never report a banned construct that only occurs
//! inside a comment, a doc example, or a string literal, so the lexer
//! fully classifies those regions instead of pattern-matching raw text.
//! It handles:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments;
//! * string, byte-string and raw-string literals (`"…"`, `b"…"`,
//!   `r"…"`, `r#"…"#` with any number of `#`s, and the `br` forms);
//! * character literals vs. lifetimes (`'a'` vs. `'a`);
//! * raw identifiers (`r#type`);
//! * numeric literals (so rules can match arithmetic on them).
//!
//! Output is a stream of significant [`Token`]s plus the line comments
//! (which carry the `noc-lint:` annotation grammar, parsed separately in
//! [`crate::annotations`]).

/// What a significant token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `HashMap`, …).
    Ident,
    /// An integer or float literal.
    Number,
    /// A (cooked, raw or byte) string literal.
    Str,
    /// A character literal.
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// Punctuation. Double colons are fused into one `::` token so rules
    /// can match `Instant::now` as three consecutive tokens.
    Punct,
}

/// One significant token with its source position (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
    pub column: usize,
}

/// One line comment with its source position (1-based).
///
/// `own_line` is true when no significant token precedes the comment on
/// its line — annotation placement rules depend on it.
#[derive(Debug, Clone)]
pub struct LineComment {
    pub text: String,
    pub line: usize,
    pub own_line: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

/// Lexes `source` into significant tokens and line comments.
///
/// The lexer is total: malformed input (unterminated strings or block
/// comments) consumes to end of input rather than failing, which is the
/// right degradation for a linter — the compiler owns syntax errors.
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    last_token_line: usize,
    out: Lexed,
    _source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            last_token_line: 0,
            out: Lexed::default(),
            _source: source,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: usize, column: usize) {
        self.last_token_line = line;
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            column,
        });
    }

    fn run(mut self) -> Lexed {
        self.skip_shebang();
        while let Some(c) = self.peek(0) {
            let (line, column) = (self.line, self.column);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    self.bump();
                    self.cooked_string();
                    self.push_token(TokenKind::Str, String::new(), line, column);
                }
                '\'' => self.char_or_lifetime(line, column),
                c if c.is_ascii_digit() => self.number(line, column),
                c if c == '_' || c.is_alphabetic() => self.ident_or_prefixed(line, column),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push_token(TokenKind::Punct, "::".to_string(), line, column);
                }
                c => {
                    self.bump();
                    self.push_token(TokenKind::Punct, c.to_string(), line, column);
                }
            }
        }
        self.out
    }

    /// Skips a `#!/usr/bin/env …` shebang on the first line. Only a real
    /// shebang qualifies: `#![…]` at file start is an inner attribute
    /// (`#![forbid(unsafe_code)]`) and must keep tokenizing normally —
    /// the unsafe-audit rule reads it.
    fn skip_shebang(&mut self) {
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
    }

    fn line_comment(&mut self, line: usize) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        let own_line = self.last_token_line != line;
        self.out.comments.push(LineComment {
            text,
            line,
            own_line,
        });
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Consumes the body and closing quote of a cooked (escaped) string;
    /// the opening quote is already consumed.
    fn cooked_string(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string starting at `r` (or after a `b`): `r#*"…"#*`.
    /// Returns false if what follows is not actually a raw string opener
    /// (then nothing is consumed beyond the probe, which the caller
    /// accounts for).
    fn raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        // Opening quote.
        self.bump();
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Is `r`/`b`/`br`/`rb` at the current position a string prefix? The
    /// current position is *on* the first letter.
    fn string_prefix_len(&self) -> Option<(usize, bool)> {
        let first = self.peek(0)?;
        let probe = |at: usize, raw: bool| -> Option<(usize, bool)> {
            match self.peek(at) {
                Some('"') => Some((at, raw)),
                Some('#') if raw => {
                    let mut k = at;
                    while self.peek(k) == Some('#') {
                        k += 1;
                    }
                    (self.peek(k) == Some('"')).then_some((at, true))
                }
                _ => None,
            }
        };
        match first {
            'r' => match self.peek(1) {
                Some('b') => probe(2, true),
                _ => probe(1, true),
            },
            'b' => match self.peek(1) {
                Some('r') => probe(2, true),
                _ => probe(1, false),
            },
            _ => None,
        }
    }

    fn ident_or_prefixed(&mut self, line: usize, column: usize) {
        if let Some((prefix_len, raw)) = self.string_prefix_len() {
            for _ in 0..prefix_len {
                self.bump();
            }
            if raw {
                self.raw_string_body();
            } else {
                self.bump(); // opening quote
                self.cooked_string();
            }
            self.push_token(TokenKind::Str, String::new(), line, column);
            return;
        }
        // Raw identifier r#ident: skip the prefix, keep the name.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            if let Some(c) = self.peek(2) {
                if c == '_' || c.is_alphabetic() {
                    self.bump();
                    self.bump();
                }
            }
        }
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Ident, text, line, column);
    }

    fn number(&mut self, line: usize, column: usize) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else if c == '.' {
                // `0.5` continues the number; `0..5` and `0.method()` do not.
                match self.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        text.push(c);
                        self.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Number, text, line, column);
    }

    fn char_or_lifetime(&mut self, line: usize, column: usize) {
        self.bump(); // the opening quote
        match self.peek(0) {
            // Escape: definitely a char literal.
            Some('\\') => {
                self.bump();
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
                self.push_token(TokenKind::Char, String::new(), line, column);
            }
            Some(c) if c == '_' || c.is_alphanumeric() => {
                if self.peek(1) == Some('\'') {
                    // 'x' — a char literal.
                    self.bump();
                    self.bump();
                    self.push_token(TokenKind::Char, String::new(), line, column);
                } else {
                    // 'name — a lifetime.
                    let mut text = String::new();
                    while let Some(c) = self.peek(0) {
                        if c == '_' || c.is_alphanumeric() {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push_token(TokenKind::Lifetime, text, line, column);
                }
            }
            // ''' or stray quote: treat as a char-ish token.
            _ => {
                self.bump();
                self.push_token(TokenKind::Char, String::new(), line, column);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn banned_tokens_in_line_comments_are_not_idents() {
        let src = "// thread_rng() would be bad\nlet x = 1;";
        assert_eq!(idents(src), ["let", "x"]);
    }

    #[test]
    fn banned_tokens_in_block_and_doc_comments_are_not_idents() {
        let src =
            "/* Instant::now() inside /* nested */ comment */\n/// HashMap in a doc\nfn f() {}";
        assert_eq!(idents(src), ["fn", "f"]);
    }

    #[test]
    fn banned_tokens_in_strings_are_not_idents() {
        let src = r#"let s = "thread_rng and HashMap"; let t = b"unwrap";"#;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn banned_tokens_in_raw_strings_are_not_idents() {
        let src = "let s = r#\"Instant::now() \" still in string \"# ;\nlet u = r\"panic!\";";
        assert_eq!(idents(src), ["let", "s", "let", "u"]);
    }

    #[test]
    fn raw_string_with_many_hashes_terminates_correctly() {
        let src = "let s = r##\"x\"# not the end yet\"##; unwrap";
        assert_eq!(idents(src), ["let", "s", "unwrap"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'q'; let nl = '\\n';";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(lifetimes, 3);
        assert_eq!(chars, 2);
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("Instant::now()").tokens;
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["Instant", "::", "now", "(", ")"]);
        assert_eq!(toks[1].kind, TokenKind::Punct);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = lex("0..10 1_000 0.5 3e8").tokens;
        let nums: Vec<String> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, ["0", "10", "1_000", "0.5", "3e8"]);
    }

    #[test]
    fn comments_record_placement() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn raw_identifiers_keep_their_name() {
        assert_eq!(idents("let r#type = 3;"), ["let", "type"]);
    }

    #[test]
    fn positions_are_one_based_and_accurate() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn shebang_line_is_skipped() {
        let src = "#!/usr/bin/env run-cargo-script\nfn main() {}\n";
        assert_eq!(idents(src), ["fn", "main"]);
        // The shebang leaves no punctuation soup behind.
        let toks = lex(src).tokens;
        assert!(toks.iter().all(|t| t.text != "#" && t.text != "!"));
        assert_eq!(
            toks[0].line, 2,
            "tokens start on the line after the shebang"
        );
    }

    #[test]
    fn shebang_without_trailing_newline_consumes_to_eof() {
        assert!(lex("#!/bin/sh").tokens.is_empty());
    }

    #[test]
    fn inner_attribute_at_file_start_is_not_a_shebang() {
        let src = "#![forbid(unsafe_code)]\npub mod engine;\n";
        let toks = lex(src).tokens;
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            &texts[..7],
            &["#", "!", "[", "forbid", "(", "unsafe_code", ")"],
            "inner attributes must keep tokenizing for the unsafe-audit rule"
        );
    }

    #[test]
    fn shebang_only_applies_to_the_first_line() {
        let src = "fn f() {}\n#!not_a_shebang\n";
        let toks = lex(src).tokens;
        assert!(toks.iter().any(|t| t.text == "not_a_shebang"));
    }

    #[test]
    fn unterminated_string_consumes_to_eof() {
        let toks = lex("let s = \"unterminated unwrap").tokens;
        assert!(toks.iter().all(|t| t.text != "unwrap"));
    }
}
