//! Cyclic redundancy check codecs for on-chip packet protection.
//!
//! The stochastic communication protocol (Dumitraş & Mărculescu, DATE 2003)
//! relies on an *error-detection / multiple-transmissions* scheme: every
//! packet is protected by a CRC, and a receiving tile silently discards any
//! packet whose CRC check fails, counting on redundant gossip transmissions
//! to deliver another clean copy. The paper notes that "CRC encoders and
//! decoders are easy to implement in hardware, as they only require one
//! shift register"; [`BitwiseCrc`] models exactly that linear-feedback shift
//! register, while [`TableCrc`] is the byte-at-a-time software equivalent
//! (the two are proven equivalent by property tests).
//!
//! # Examples
//!
//! ```
//! use noc_crc::{CrcAlgorithm, CrcParams, TableCrc};
//!
//! let crc = TableCrc::new(CrcParams::CRC16_CCITT);
//! let tag = crc.checksum(b"123456789");
//! assert_eq!(tag, 0x29B1); // published check value for CRC-16/CCITT-FALSE
//! ```
//!
//! Attaching and verifying a CRC on a payload:
//!
//! ```
//! use noc_crc::{CrcParams, PacketCodec};
//!
//! let codec = PacketCodec::new(CrcParams::CRC32);
//! let framed = codec.encode(b"on-chip gossip");
//! assert!(codec.verify(&framed));
//!
//! let mut corrupted = framed.clone();
//! corrupted[3] ^= 0x40; // single-bit upset
//! assert!(!codec.verify(&corrupted));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod bitwise;
mod codec;
mod params;
mod table;

pub use analysis::{burst_detection_exhaustive, undetected_fraction, BurstReport};
pub use bitwise::{BitwiseCrc, CrcState};
pub use codec::{DecodeError, PacketCodec};
pub use params::CrcParams;
pub use table::TableCrc;

/// A CRC implementation over a fixed parameter set.
///
/// Both the hardware-faithful [`BitwiseCrc`] and the byte-table [`TableCrc`]
/// implement this trait, so higher layers can be generic over the codec
/// style.
pub trait CrcAlgorithm {
    /// The parameter set (polynomial, width, reflection, ...) in use.
    fn params(&self) -> &CrcParams;

    /// Computes the CRC of `data` in one shot.
    fn checksum(&self, data: &[u8]) -> u64;

    /// Width of the CRC in bits (1..=64).
    fn width(&self) -> u32 {
        self.params().width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published check values (`checksum(b"123456789")`) from the canonical
    /// CRC catalogue.
    const CHECKS: &[(CrcParams, u64)] = &[
        (CrcParams::CRC8_ATM, 0xA1),
        (CrcParams::CRC16_CCITT, 0x29B1),
        (CrcParams::CRC16_IBM, 0xBB3D),
        (CrcParams::CRC32, 0xCBF43926),
        (CrcParams::CRC5_USB, 0x19),
    ];

    #[test]
    fn table_matches_catalogue_check_values() {
        for &(params, expect) in CHECKS {
            let crc = TableCrc::new(params);
            assert_eq!(
                crc.checksum(b"123456789"),
                expect,
                "catalogue mismatch for {}",
                params.name
            );
        }
    }

    #[test]
    fn bitwise_matches_catalogue_check_values() {
        for &(params, expect) in CHECKS {
            let crc = BitwiseCrc::new(params);
            assert_eq!(
                crc.checksum(b"123456789"),
                expect,
                "catalogue mismatch for {}",
                params.name
            );
        }
    }

    #[test]
    fn empty_input_is_well_defined() {
        for &(params, _) in CHECKS {
            let bitwise = BitwiseCrc::new(params);
            let table = TableCrc::new(params);
            assert_eq!(bitwise.checksum(&[]), table.checksum(&[]));
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let algos: Vec<Box<dyn CrcAlgorithm>> = vec![
            Box::new(BitwiseCrc::new(CrcParams::CRC16_CCITT)),
            Box::new(TableCrc::new(CrcParams::CRC16_CCITT)),
        ];
        let a = algos[0].checksum(b"gossip");
        let b = algos[1].checksum(b"gossip");
        assert_eq!(a, b);
        assert_eq!(algos[0].width(), 16);
    }
}
