// Corpus fixture: the tracked engine state struct with one field the
// checkpoint misses (true positive) and one annotated derived cache.
// Plain `//` comments throughout: corpus.rs `include!`s this pair into
// a module to prove the fixture is real, compiling Rust.

/// Mini stand-in for the engine's per-run state.
pub struct Simulation {
    /// Rounds executed so far; captured by checkpoint.rs.
    pub round: u64,
    /// Never serialized anywhere: the drift the rule must catch.
    pub droppable_cache: Vec<u64>,
    /// Derived cache rebuilt on restore; serializing it would only
    /// duplicate the frontier.
    // noc-lint: allow(checkpoint-coverage, reason = "derived from the frontier and rebuilt by restore_from; the checkpoint stays minimal")
    pub frontier_cache: Vec<usize>,
}

impl Simulation {
    /// Advances one round and caches nothing of consequence.
    pub fn step(&mut self) {
        self.round += 1;
        self.droppable_cache.push(self.round);
        self.frontier_cache.push(self.round as usize);
    }
}
