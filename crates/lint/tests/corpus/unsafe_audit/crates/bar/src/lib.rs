// noc-lint: allow(unsafe-audit, reason = "staged crate root; forbid lands with the first real item in the next change")
pub fn stub() {}
